// Package bench implements the workload generator and experiment
// harnesses for the performance measurements of §6 of the paper:
//
//   - Fig. 6 — 100 transactions, each changing the quantity of one item
//     (few changes to ONE partial differential), over database sizes
//     from 1 to 10000 items. Incremental monitoring should be (nearly)
//     independent of database size; naive monitoring is linear in it.
//
//   - Fig. 7 — one transaction changing the quantity, delivery time and
//     consume frequency of ALL items (massive changes to THREE partial
//     differentials). Naive wins, but only by a constant factor (≈1.6
//     in the paper).
//
// The database is the §3.1 inventory schema, fully expanded rule
// conditions, exactly as in the paper's benchmark.
package bench

import (
	"fmt"
	"time"

	"partdiff/internal/amosql"
	"partdiff/internal/rules"
	"partdiff/internal/types"
	"partdiff/internal/wal"
)

// Inventory is a populated §3.1 benchmark database.
type Inventory struct {
	Sess  *amosql.Session
	N     int
	Items []types.Value // item OIDs
	Sups  []types.Value // supplier OIDs

	// Orders counts order procedure invocations (rule firings).
	Orders int
}

// schema is the §3.1 schema (threshold optionally shared for the node
// sharing ablation).
func schema(sharedThreshold bool) string {
	thr := "create function threshold(item i) -> integer"
	if sharedThreshold {
		thr = "create shared function threshold(item i) -> integer"
	}
	return `
create type item;
create type supplier;
create function quantity(item) -> integer;
create function max_stock(item) -> integer;
create function min_stock(item) -> integer;
create function consume_freq(item) -> integer;
create function supplies(supplier) -> item;
create function delivery_time(item i, supplier s) -> integer;
` + thr + `
    as
    select consume_freq(i) *
        delivery_time(i, s) + min_stock(i)
    for each supplier s where supplies(s) = i;
create rule monitor_items() as
     when for each item i
     where quantity(i) < threshold(i)
     do order(i, max_stock(i) - quantity(i));
`
}

// Config controls inventory construction.
type Config struct {
	N               int // number of items (and suppliers)
	Mode            rules.Mode
	SharedThreshold bool // §7.1 node sharing ablation
	Activate        bool // activate monitor_items
	// PositiveOnly disables negative partial differentials — the
	// configuration of the paper's §6 benchmark, which monitored
	// insertions only (five positive differentials, fig. 2).
	PositiveOnly bool
	// Dir, when non-empty, attaches a durable data directory: every
	// measured commit is write-ahead logged under the Sync fsync policy
	// before it is acknowledged — the durability benchmark
	// configuration. (Bulk population bypasses the transaction layer
	// and is not logged; only the measured workload is.)
	Dir  string
	Sync wal.SyncPolicy
}

// NewInventory builds and populates a benchmark database. Each item i
// has quantity 5000, max_stock 5000, min_stock 100, consume_freq 20 and
// one supplier with delivery_time 2, so every threshold is 140 and no
// condition is initially true.
func NewInventory(cfg Config) (*Inventory, error) {
	inv := &Inventory{Sess: amosql.NewSession(cfg.Mode), N: cfg.N}
	err := inv.Sess.RegisterProcedure("order", func(args []types.Value) error {
		inv.Orders++
		return nil
	})
	if err != nil {
		return nil, err
	}
	if cfg.Dir != "" {
		if err := inv.Sess.AttachDir(cfg.Dir, amosql.DirConfig{Policy: cfg.Sync}); err != nil {
			return nil, err
		}
	}
	if _, err := inv.Sess.Exec(schema(cfg.SharedThreshold)); err != nil {
		return nil, err
	}
	if cfg.PositiveOnly {
		inv.Sess.Rules().SetMonitorDeletions(false)
	}
	// Populate directly through the store for speed; this is ordinary
	// (pre-activation) loading, not part of the measured workload.
	cat, st := inv.Sess.Catalog(), inv.Sess.Store()
	for i := 0; i < cfg.N; i++ {
		iOID, err := cat.NewObject("item")
		if err != nil {
			return nil, err
		}
		sOID, err := cat.NewObject("supplier")
		if err != nil {
			return nil, err
		}
		item, sup := types.Obj(iOID), types.Obj(sOID)
		inv.Items = append(inv.Items, item)
		inv.Sups = append(inv.Sups, sup)
		st.Insert("type:item", types.Tuple{item})
		st.Insert("type:supplier", types.Tuple{sup})
		for rel, v := range map[string]int64{
			"quantity": 5000, "max_stock": 5000, "min_stock": 100, "consume_freq": 20,
		} {
			if _, err := st.Set(rel, []types.Value{item}, []types.Value{types.Int(v)}); err != nil {
				return nil, err
			}
		}
		if _, err := st.Set("supplies", []types.Value{sup}, []types.Value{item}); err != nil {
			return nil, err
		}
		if _, err := st.Set("delivery_time", []types.Value{item, sup}, []types.Value{types.Int(2)}); err != nil {
			return nil, err
		}
	}
	if cfg.Activate {
		if _, err := inv.Sess.Exec("activate monitor_items();"); err != nil {
			return nil, err
		}
	}
	return inv, nil
}

// SetQuantity updates one item's quantity inside the current
// transaction (or autocommitted when none is active).
func (inv *Inventory) SetQuantity(i int, q int64) error {
	_, err := inv.Sess.Store().Set("quantity",
		[]types.Value{inv.Items[i]}, []types.Value{types.Int(q)})
	return err
}

// Txn runs fn inside one transaction with deferred rule checking.
func (inv *Inventory) Txn(fn func() error) error {
	if err := inv.Sess.Txns().Begin(); err != nil {
		return err
	}
	if err := fn(); err != nil {
		inv.Sess.Txns().Rollback()
		return err
	}
	return inv.Sess.Txns().Commit()
}

// RunFig6Transactions runs txns transactions, each updating the
// quantity of one item (cycling through the database) while staying
// above the threshold — the fig. 6 workload: few changes to one partial
// differential.
func (inv *Inventory) RunFig6Transactions(txns int) error {
	for t := 0; t < txns; t++ {
		i := t % inv.N
		// Alternate the written value per cycle over the items so every
		// transaction is a real update; always far above the threshold
		// of 140 so the rule never fires (pure monitoring cost).
		q := int64(4900 - (t/inv.N)%2*100)
		if err := inv.Txn(func() error { return inv.SetQuantity(i, q) }); err != nil {
			return err
		}
	}
	return nil
}

// RunFig7Transaction runs one transaction changing quantity,
// delivery_time and consume_freq of EVERY item — the fig. 7 workload:
// massive changes to three partial differentials.
func (inv *Inventory) RunFig7Transaction(round int64) error {
	st := inv.Sess.Store()
	return inv.Txn(func() error {
		for i, item := range inv.Items {
			if _, err := st.Set("quantity", []types.Value{item},
				[]types.Value{types.Int(4800 + round%2*100)}); err != nil {
				return err
			}
			if _, err := st.Set("delivery_time", []types.Value{item, inv.Sups[i]},
				[]types.Value{types.Int(2 + round%2)}); err != nil {
				return err
			}
			if _, err := st.Set("consume_freq", []types.Value{item},
				[]types.Value{types.Int(20 + round%2)}); err != nil {
				return err
			}
		}
		return nil
	})
}

// Fig6Row is one measured point of the fig. 6 experiment.
type Fig6Row struct {
	DBSize  int
	Txns    int
	NaiveNs int64 // total wall time, naive monitoring
	IncrNs  int64 // total wall time, incremental monitoring

	// Per-mode monitor telemetry for the measured interval.
	NaiveTel Telemetry
	IncrTel  Telemetry
}

// Speedup returns naive/incremental.
func (r Fig6Row) Speedup() float64 {
	if r.IncrNs == 0 {
		return 0
	}
	return float64(r.NaiveNs) / float64(r.IncrNs)
}

// RunFig6 measures the fig. 6 experiment for each database size.
func RunFig6(sizes []int, txns int) ([]Fig6Row, error) {
	out := make([]Fig6Row, 0, len(sizes))
	for _, n := range sizes {
		row := Fig6Row{DBSize: n, Txns: txns}
		for _, mode := range []rules.Mode{rules.Naive, rules.Incremental} {
			inv, err := NewInventory(Config{N: n, Mode: mode, Activate: true})
			if err != nil {
				return nil, err
			}
			before := inv.Telemetry()
			start := time.Now()
			if err := inv.RunFig6Transactions(txns); err != nil {
				return nil, err
			}
			ns := time.Since(start).Nanoseconds()
			tel := inv.Telemetry().Sub(before)
			if mode == rules.Naive {
				row.NaiveNs, row.NaiveTel = ns, tel
			} else {
				row.IncrNs, row.IncrTel = ns, tel
			}
			if inv.Orders != 0 {
				return nil, fmt.Errorf("fig6 workload must not trigger rules, got %d orders", inv.Orders)
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// Fig7Row is one measured point of the fig. 7 experiment.
type Fig7Row struct {
	N       int
	NaiveNs int64
	IncrNs  int64

	// Per-mode monitor telemetry for the measured interval.
	NaiveTel Telemetry
	IncrTel  Telemetry
}

// Ratio returns incremental/naive — the paper reports ≈1.6, constant
// over the database size.
func (r Fig7Row) Ratio() float64 {
	if r.NaiveNs == 0 {
		return 0
	}
	return float64(r.IncrNs) / float64(r.NaiveNs)
}

// RunFig7 measures the fig. 7 experiment for each database size. rounds
// transactions are run and the total time reported (each transaction
// changes all n items in all three influents).
func RunFig7(sizes []int, rounds int) ([]Fig7Row, error) {
	out := make([]Fig7Row, 0, len(sizes))
	for _, n := range sizes {
		row := Fig7Row{N: n}
		for _, mode := range []rules.Mode{rules.Naive, rules.Incremental} {
			inv, err := NewInventory(Config{N: n, Mode: mode, Activate: true})
			if err != nil {
				return nil, err
			}
			before := inv.Telemetry()
			start := time.Now()
			for r := 0; r < rounds; r++ {
				if err := inv.RunFig7Transaction(int64(r)); err != nil {
					return nil, err
				}
			}
			ns := time.Since(start).Nanoseconds()
			tel := inv.Telemetry().Sub(before)
			if mode == rules.Naive {
				row.NaiveNs, row.NaiveTel = ns, tel
			} else {
				row.IncrNs, row.IncrTel = ns, tel
			}
			if inv.Orders != 0 {
				return nil, fmt.Errorf("fig7 workload must not trigger rules, got %d orders", inv.Orders)
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// HybridRow is one measured point of the hybrid-monitor experiment:
// total time for a mixed workload (many small transactions plus a few
// massive ones) under each monitoring mode. The hybrid monitor should
// approach the best of both.
type HybridRow struct {
	N           int
	NaiveNs     int64
	IncrNs      int64
	HybridNs    int64
	SmallTxns   int
	MassiveTxns int
}

// RunHybrid measures the mixed workload for each database size.
func RunHybrid(sizes []int, smallTxns, massiveTxns int) ([]HybridRow, error) {
	out := make([]HybridRow, 0, len(sizes))
	for _, n := range sizes {
		row := HybridRow{N: n, SmallTxns: smallTxns, MassiveTxns: massiveTxns}
		for _, mode := range []rules.Mode{rules.Naive, rules.Incremental, rules.Hybrid} {
			inv, err := NewInventory(Config{N: n, Mode: mode, Activate: true})
			if err != nil {
				return nil, err
			}
			start := time.Now()
			if err := inv.RunFig6Transactions(smallTxns); err != nil {
				return nil, err
			}
			for r := 0; r < massiveTxns; r++ {
				if err := inv.RunFig7Transaction(int64(r)); err != nil {
					return nil, err
				}
			}
			ns := time.Since(start).Nanoseconds()
			switch mode {
			case rules.Naive:
				row.NaiveNs = ns
			case rules.Incremental:
				row.IncrNs = ns
			default:
				row.HybridNs = ns
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// SharingRow is one measured point of the §7.1 node sharing ablation:
// a threshold-side update (min_stock) propagated through a flat network
// versus a bushy network with a shared threshold node.
type SharingRow struct {
	DBSize  int
	Txns    int
	FlatNs  int64
	BushyNs int64
}

// RunNodeSharing measures flat vs bushy propagation for min_stock
// updates that keep the condition false.
func RunNodeSharing(sizes []int, txns int) ([]SharingRow, error) {
	out := make([]SharingRow, 0, len(sizes))
	for _, n := range sizes {
		row := SharingRow{DBSize: n, Txns: txns}
		for _, shared := range []bool{false, true} {
			inv, err := NewInventory(Config{N: n, Mode: rules.Incremental, SharedThreshold: shared, Activate: true})
			if err != nil {
				return nil, err
			}
			st := inv.Sess.Store()
			start := time.Now()
			for t := 0; t < txns; t++ {
				i := t % n
				ms := int64(101 + (t/n)%2) // 101/102: threshold stays ≪ 5000
				err := inv.Txn(func() error {
					_, err := st.Set("min_stock", []types.Value{inv.Items[i]}, []types.Value{types.Int(ms)})
					return err
				})
				if err != nil {
					return nil, err
				}
			}
			ns := time.Since(start).Nanoseconds()
			if shared {
				row.BushyNs = ns
			} else {
				row.FlatNs = ns
			}
		}
		out = append(out, row)
	}
	return out, nil
}
