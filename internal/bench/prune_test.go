package bench

import "testing"

// TestRunPruneSmoke runs the static-pruning A/B at a small size.
// RunPrune carries its own gates — non-vacuous pruning and twin
// equivalence — so a passing run is already meaningful; the assertions
// here pin the per-workload shape the experiment's argument rests on.
func TestRunPruneSmoke(t *testing.T) {
	rows, err := RunPrune([]int{16}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows=%+v", rows)
	}
	byName := map[string]PruneRow{}
	for _, r := range rows {
		byName[r.Workload] = r
		if r.OffNs <= 0 || r.OnNs <= 0 {
			t.Errorf("non-positive timing: %+v", r)
		}
		if r.Compiled != r.Scheduled+r.Pruned {
			t.Errorf("%s: compiled %d != scheduled %d + pruned %d",
				r.Workload, r.Compiled, r.Scheduled, r.Pruned)
		}
		if r.Pruned <= 0 {
			t.Errorf("%s: nothing pruned", r.Workload)
		}
	}
	// Sealing more dimensions proves more differentials dead: the fig. 6
	// configuration must prune strictly more than fig. 7's.
	if byName["fig6"].Pruned <= byName["fig7"].Pruned {
		t.Errorf("fig6 pruned %d, fig7 pruned %d; want fig6 > fig7",
			byName["fig6"].Pruned, byName["fig7"].Pruned)
	}
	// The dead disjunct executes on every update when not pruned, so the
	// deadbranch workload must show a runtime reduction, not just a
	// smaller schedule.
	db := byName["deadbranch"]
	if db.OnDiffs >= db.OffDiffs {
		t.Errorf("deadbranch runtime differentials: off=%d on=%d; want a reduction",
			db.OffDiffs, db.OnDiffs)
	}
	if db.OnZero >= db.OffZero {
		t.Errorf("deadbranch zero-effect executions: off=%d on=%d; want a reduction",
			db.OffZero, db.OnZero)
	}
}
