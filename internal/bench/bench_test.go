package bench

import (
	"testing"

	"partdiff/internal/rules"
	"partdiff/internal/types"
)

func TestNewInventoryPopulation(t *testing.T) {
	inv, err := NewInventory(Config{N: 5, Mode: rules.Incremental, Activate: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(inv.Items) != 5 || len(inv.Sups) != 5 {
		t.Fatalf("items=%d sups=%d", len(inv.Items), len(inv.Sups))
	}
	// All thresholds are 20*2+100 = 140.
	r, err := inv.Sess.Query(`select threshold(i) for each item i;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tuples) != 1 || !r.Tuples[0][0].Equal(types.Int(140)) {
		t.Errorf("thresholds=%v", r.Tuples)
	}
	// No condition initially true.
	r, _ = inv.Sess.Query(`select i for each item i where quantity(i) < threshold(i);`)
	if len(r.Tuples) != 0 {
		t.Errorf("initially true: %v", r.Tuples)
	}
}

func TestInventoryRuleActuallyMonitors(t *testing.T) {
	inv, err := NewInventory(Config{N: 3, Mode: rules.Incremental, Activate: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := inv.Txn(func() error { return inv.SetQuantity(1, 10) }); err != nil {
		t.Fatal(err)
	}
	if inv.Orders != 1 {
		t.Errorf("orders=%d; the benchmark rule must be live", inv.Orders)
	}
}

func TestFig6WorkloadDoesNotTrigger(t *testing.T) {
	for _, mode := range []rules.Mode{rules.Incremental, rules.Naive} {
		inv, err := NewInventory(Config{N: 10, Mode: mode, Activate: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := inv.RunFig6Transactions(20); err != nil {
			t.Fatal(err)
		}
		if inv.Orders != 0 {
			t.Errorf("mode %s: fig6 workload triggered %d orders", mode, inv.Orders)
		}
		st := inv.Sess.Rules().Stats()
		if mode == rules.Incremental && st.Propagations != 20 {
			t.Errorf("propagations=%d want 20", st.Propagations)
		}
		if mode == rules.Naive && st.NaiveRecomputations != 20 {
			t.Errorf("recomputations=%d want 20", st.NaiveRecomputations)
		}
	}
}

// TestFig6_OneDifferentialPerTransaction verifies the §6.1 claim: each
// fig. 6 transaction executes only the Δ+quantity (and Δ−quantity)
// partial differentials — changes to one influent only.
func TestFig6_OneDifferentialPerTransaction(t *testing.T) {
	inv, err := NewInventory(Config{N: 10, Mode: rules.Incremental, Activate: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := inv.Txn(func() error { return inv.SetQuantity(0, 4900) }); err != nil {
		t.Fatal(err)
	}
	for _, e := range inv.Sess.Rules().Network().Trace() {
		if e.Influent != "quantity" {
			t.Errorf("unexpected differential %s", e.Differential)
		}
	}
	st := inv.Sess.Rules().Stats()
	// One update = one retraction + one assertion: the positive and the
	// negative quantity differentials run, nothing else.
	if st.DifferentialsExecuted != 2 {
		t.Errorf("differentials executed = %d, want 2", st.DifferentialsExecuted)
	}
}

// TestFig7_ThreeDifferentials verifies the §6.2 claim: the massive
// transaction touches exactly the three influents quantity,
// delivery_time and consume_freq.
func TestFig7_ThreeDifferentials(t *testing.T) {
	inv, err := NewInventory(Config{N: 5, Mode: rules.Incremental, Activate: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := inv.RunFig7Transaction(1); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, e := range inv.Sess.Rules().Network().Trace() {
		seen[e.Influent] = true
	}
	want := []string{"quantity", "delivery_time", "consume_freq"}
	for _, w := range want {
		if !seen[w] {
			t.Errorf("influent %s not exercised; trace influents=%v", w, seen)
		}
	}
	if len(seen) != 3 {
		t.Errorf("influents=%v, want exactly 3", seen)
	}
}

func TestRunFig6SmokeAndShape(t *testing.T) {
	rows, err := RunFig6([]int{4, 64}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows=%v", rows)
	}
	for _, r := range rows {
		if r.NaiveNs <= 0 || r.IncrNs <= 0 {
			t.Errorf("non-positive timing: %+v", r)
		}
		_ = r.Speedup()
	}
}

func TestRunFig7Smoke(t *testing.T) {
	rows, err := RunFig7([]int{8}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].NaiveNs <= 0 || rows[0].IncrNs <= 0 {
		t.Fatalf("rows=%+v", rows)
	}
	_ = rows[0].Ratio()
}

func TestRunHybridSmoke(t *testing.T) {
	rows, err := RunHybrid([]int{8}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].NaiveNs <= 0 || rows[0].IncrNs <= 0 || rows[0].HybridNs <= 0 {
		t.Fatalf("rows=%+v", rows)
	}
}

func TestRunNodeSharingSmoke(t *testing.T) {
	rows, err := RunNodeSharing([]int{8}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].FlatNs <= 0 || rows[0].BushyNs <= 0 {
		t.Fatalf("rows=%+v", rows)
	}
}

// TestFig6_IncrementalWorkIndependentOfDBSize is the logical core of
// fig. 6, asserted on operation counts rather than wall time (robust in
// CI): the number of differentials executed per transaction must not
// grow with the database size.
func TestFig6_IncrementalWorkIndependentOfDBSize(t *testing.T) {
	counts := map[int]int{}
	for _, n := range []int{10, 1000} {
		inv, err := NewInventory(Config{N: n, Mode: rules.Incremental, Activate: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := inv.RunFig6Transactions(10); err != nil {
			t.Fatal(err)
		}
		counts[n] = inv.Sess.Rules().Stats().DifferentialsExecuted
	}
	if counts[10] != counts[1000] {
		t.Errorf("differential executions grew with DB size: %v", counts)
	}
}
