package bench

import (
	"fmt"
	"time"

	"partdiff/internal/rules"
)

// This file holds the flight-recorder overhead experiment: the fig. 6
// and fig. 7 workloads with the recorder disarmed (the default: one
// atomic load per record site) versus armed in window-only mode (rings
// capturing every wave and commit, no bundle directory, so nothing
// touches disk). The recorder is meant to be left armed on a serving
// database, so the acceptance bar is a low single-digit-percent median
// overhead — the same bar the event bus meets.

// FlightrecOverheadRow is one recorder A/B measurement: median total
// wall time for a workload with the recorder disarmed vs armed.
type FlightrecOverheadRow struct {
	Experiment string `json:"experiment"`
	DBSize     int    `json:"db_size"`
	Txns       int    `json:"txns"`
	OffNs      int64  `json:"off_ns"` // median over reps, recorder disarmed
	OnNs       int64  `json:"on_ns"`  // median over reps, recorder armed
	// OverheadPct is (on-off)/off in percent; negative values are
	// measurement noise, not a speedup.
	OverheadPct float64 `json:"overhead_pct"`
	// Commits and Waves are the armed run's ring write counts — a
	// sanity check that the recorder actually observed the workload.
	Commits int `json:"commits_recorded"`
	Waves   int `json:"waves_recorded"`
}

// RunFlightrecOverhead measures recorder-disarmed vs recorder-armed
// medians over reps repetitions of the fig. 6 (txns small
// transactions) and fig. 7 (rounds massive transactions) workloads at
// database size n.
func RunFlightrecOverhead(n, txns, rounds, reps int) ([]FlightrecOverheadRow, error) {
	type workload struct {
		name string
		txns int
		run  func(inv *Inventory) error
	}
	workloads := []workload{
		{"fig6", txns, func(inv *Inventory) error { return inv.RunFig6Transactions(txns) }},
		{"fig7", rounds, func(inv *Inventory) error {
			for r := 0; r < rounds; r++ {
				if err := inv.RunFig7Transaction(int64(r)); err != nil {
					return err
				}
			}
			return nil
		}},
	}
	measure := func(w workload, armed bool, row *FlightrecOverheadRow) (int64, error) {
		inv, err := NewInventory(Config{N: n, Mode: rules.Incremental, Activate: true})
		if err != nil {
			return 0, err
		}
		rec := inv.Sess.Observability().Flight
		if armed {
			// No bundle directory: window-only mode, rings capture but
			// triggers never write bundles — the pure capture cost.
			rec.Arm()
		}
		start := time.Now()
		if err := w.run(inv); err != nil {
			return 0, err
		}
		ns := time.Since(start).Nanoseconds()
		if inv.Orders != 0 {
			return 0, fmt.Errorf("%s workload must not trigger rules, got %d orders", w.name, inv.Orders)
		}
		if armed {
			b := rec.BundleNow("", "bench ring check")
			rec.Close() // stop the watchdog and writer goroutines
			row.Commits, row.Waves = len(b.Commits), len(b.Waves)
			if row.Commits == 0 || row.Waves == 0 {
				return 0, fmt.Errorf("%s: armed recorder observed no work (commits=%d waves=%d)",
					w.name, row.Commits, row.Waves)
			}
		} else if rec.Armed() {
			return 0, fmt.Errorf("%s: baseline recorder armed itself", w.name)
		}
		return ns, nil
	}
	out := make([]FlightrecOverheadRow, 0, len(workloads))
	for _, w := range workloads {
		row := FlightrecOverheadRow{Experiment: w.name, DBSize: n, Txns: w.txns}
		// One warm-up round, then off/on interleaved within each rep
		// (order alternating per rep) so slow drift — page-cache and
		// allocator warm-up, CPU frequency scaling — cancels out of the
		// A/B instead of loading onto whichever side runs first.
		if _, err := measure(w, false, &row); err != nil {
			return nil, err
		}
		var offTimes, onTimes []int64
		for rep := 0; rep < reps; rep++ {
			for pass := 0; pass < 2; pass++ {
				armed := (rep+pass)%2 == 1
				ns, err := measure(w, armed, &row)
				if err != nil {
					return nil, err
				}
				if armed {
					onTimes = append(onTimes, ns)
				} else {
					offTimes = append(offTimes, ns)
				}
			}
		}
		row.OffNs, row.OnNs = median(offTimes), median(onTimes)
		if row.OffNs > 0 {
			row.OverheadPct = 100 * float64(row.OnNs-row.OffNs) / float64(row.OffNs)
		}
		out = append(out, row)
	}
	return out, nil
}
