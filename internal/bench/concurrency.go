package bench

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"partdiff/internal/rules"
	"partdiff/internal/wal"
)

// The concurrency experiment measures the two claims of the concurrent
// session layer:
//
//   - snapshot reads scale: R readers querying MVCC snapshots while one
//     writer commits continuously should deliver ~R× the single-reader
//     query throughput (readers never touch the writer gate);
//
//   - group commit pays: W concurrent writers under SyncGrouped share
//     batched fsyncs (the append happens inside the gate, the fsync
//     wait outside it), so commit throughput at W ≥ 4 should exceed
//     the serial SyncAlways baseline where every commit fsyncs alone.

// ConcReadRow is one point of the read-scaling measurement.
type ConcReadRow struct {
	Readers int
	Window  time.Duration
	Queries int64 // snapshot queries completed inside the window
	Commits int64 // writer commits landed inside the window
}

// QueriesPerSec returns aggregate snapshot-read throughput.
func (r ConcReadRow) QueriesPerSec() float64 {
	return float64(r.Queries) / r.Window.Seconds()
}

// CommitsPerSec returns the background writer's commit throughput.
func (r ConcReadRow) CommitsPerSec() float64 {
	return float64(r.Commits) / r.Window.Seconds()
}

// RunReadScaling runs, for each reader count, one background writer
// (fig. 6 single-item updates through the session gate) plus R
// snapshot readers for a fixed wall-clock window against an n-item
// inventory, and reports both throughputs.
func RunReadScaling(n int, readerCounts []int, window time.Duration) ([]ConcReadRow, error) {
	const readQ = `select quantity(i) for each item i where quantity(i) < 140;`
	out := make([]ConcReadRow, 0, len(readerCounts))
	for _, readers := range readerCounts {
		inv, err := NewInventory(Config{N: n, Mode: rules.Incremental, Activate: true})
		if err != nil {
			return nil, err
		}
		sess := inv.Sess
		var (
			queries, commits atomic.Int64
			firstErr         error
			errOnce          sync.Once
			wg               sync.WaitGroup
		)
		fail := func(err error) { errOnce.Do(func() { firstErr = err }) }
		done := make(chan struct{})

		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := 0; ; t++ {
				select {
				case <-done:
					return
				default:
				}
				i := t % n
				q := int64(4900 - (t/n)%2*100)
				if err := sess.Begin(); err != nil {
					fail(err)
					return
				}
				if err := inv.SetQuantity(i, q); err != nil {
					_ = sess.Rollback()
					fail(err)
					return
				}
				if err := sess.Commit(); err != nil {
					fail(err)
					return
				}
				commits.Add(1)
			}
		}()
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-done:
						return
					default:
					}
					if _, err := sess.Query(readQ); err != nil {
						fail(err)
						return
					}
					queries.Add(1)
				}
			}()
		}
		time.Sleep(window)
		close(done)
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
		out = append(out, ConcReadRow{
			Readers: readers, Window: window,
			Queries: queries.Load(), Commits: commits.Load(),
		})
	}
	return out, nil
}

// ConcWriteRow is one point of the write-scaling measurement: txns
// commits split across W writers against a write-ahead-logged database.
type ConcWriteRow struct {
	Writers int
	Policy  string
	Txns    int
	Ns      int64 // total wall time for all commits
	Fsyncs  int64 // log fsyncs issued during the measured interval

	// Writer-gate admission wait percentiles (the latency of Begin).
	WaitP50, WaitP95, WaitP99 time.Duration
}

// CommitsPerSec returns aggregate commit throughput.
func (r ConcWriteRow) CommitsPerSec() float64 {
	if r.Ns == 0 {
		return 0
	}
	return float64(r.Txns) / (float64(r.Ns) / 1e9)
}

// NsPerOp returns the mean wall time per commit.
func (r ConcWriteRow) NsPerOp() int64 {
	if r.Txns == 0 {
		return 0
	}
	return r.Ns / int64(r.Txns)
}

// RunWriteScaling measures durable commit throughput for the serial
// SyncAlways baseline (one writer, one fsync per commit) and for
// SyncGrouped at each concurrent writer count. Each point uses a fresh
// temporary data directory, discarded afterwards.
func RunWriteScaling(n, txns int, writerCounts []int) ([]ConcWriteRow, error) {
	type point struct {
		writers int
		policy  wal.SyncPolicy
	}
	points := []point{{1, wal.SyncAlways}}
	for _, w := range writerCounts {
		points = append(points, point{w, wal.SyncGrouped})
	}
	out := make([]ConcWriteRow, 0, len(points))
	for _, pt := range points {
		row, err := runWriteScalingOne(n, txns, pt.writers, pt.policy)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

func runWriteScalingOne(n, txns, writers int, policy wal.SyncPolicy) (ConcWriteRow, error) {
	dir, err := os.MkdirTemp("", "partdiff-bench-")
	if err != nil {
		return ConcWriteRow{}, err
	}
	defer os.RemoveAll(dir)
	inv, err := NewInventory(Config{N: n, Mode: rules.Incremental, Activate: true, Dir: dir, Sync: policy})
	if err != nil {
		return ConcWriteRow{}, err
	}
	defer inv.Sess.Close()
	sess := inv.Sess
	reg := sess.Observability().Registry
	fsyncs := reg.CounterValue("partdiff_wal_fsyncs_total")

	per := txns / writers
	waits := make([][]time.Duration, writers)
	var (
		firstErr error
		errOnce  sync.Once
		wg       sync.WaitGroup
	)
	fail := func(err error) { errOnce.Do(func() { firstErr = err }) }
	start := time.Now()
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := make([]time.Duration, 0, per)
			for t := 0; t < per; t++ {
				// Spread writers over the items; every value is unique
				// within the run so each commit is a real update (an
				// unchanged set logs nothing), and stays far above the
				// threshold so the rule never fires.
				i := (w + t*writers) % n
				q := int64(3000 + w*per + t)
				b := time.Now()
				if err := sess.Begin(); err != nil {
					fail(err)
					return
				}
				ws = append(ws, time.Since(b))
				if err := inv.SetQuantity(i, q); err != nil {
					_ = sess.Rollback()
					fail(err)
					return
				}
				if err := sess.Commit(); err != nil {
					fail(err)
					return
				}
			}
			waits[w] = ws
		}()
	}
	wg.Wait()
	ns := time.Since(start).Nanoseconds()
	if firstErr != nil {
		return ConcWriteRow{}, firstErr
	}
	var all []time.Duration
	for _, ws := range waits {
		all = append(all, ws...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	row := ConcWriteRow{
		Writers: writers, Policy: policy.String(), Txns: per * writers, Ns: ns,
		Fsyncs:  reg.CounterValue("partdiff_wal_fsyncs_total") - fsyncs,
		WaitP50: pctDur(all, 0.50), WaitP95: pctDur(all, 0.95), WaitP99: pctDur(all, 0.99),
	}
	if inv.Orders != 0 {
		return ConcWriteRow{}, fmt.Errorf("concurrency workload must not trigger rules, got %d orders", inv.Orders)
	}
	return row, nil
}

// pctDur returns the p-th percentile of sorted durations.
func pctDur(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}
