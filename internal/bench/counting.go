package bench

import (
	"fmt"
	"reflect"
	"time"

	"partdiff/internal/amosql"
	"partdiff/internal/maint"
	"partdiff/internal/rules"
	"partdiff/internal/types"
)

// This file holds the counting-maintenance / hybrid-chooser experiment
// (the new half of `bench -exp hybrid`): twin databases per workload —
// the standard incremental monitor (which handles deletions with minus
// differentials plus the §7.2 derivability probe) against the counting
// maintainer (which decrements per-tuple support and retracts only at
// zero) and, on the chooser workload, the cost-based hybrid mode.
//
//   - fig6del — fig. 6-shaped small transactions, skewed toward
//     deletions: each pair of transactions deletes one of an item's K
//     duplicate supplier derivations and then restores it. The deleted
//     derivation is never the last one, so the standard monitor's minus
//     candidate is still derivable: it pays a probe per delete and a
//     spurious re-insert Δ per restore (whose downstream differentials
//     run and emit nothing); counting pays a K↔K−1 support decrement
//     and emits no Δ at all.
//   - fig7del — fig. 7-shaped massive transactions alternating
//     delete-all / restore-all of every item's duplicate supplier:
//     the same probe and spurious-Δ cost at wave scale.
//   - deleteheavy — deletions that genuinely retract: a shared view
//     with one witness derivation per item, where deleting the witness
//     retracts all N derived tuples. The standard monitor must prove
//     each of the N minus candidates underivable — N probes that each
//     exhaust the W-row witness table fruitlessly (Derivable
//     short-circuits on success, so only failed probes pay full price);
//     counting sees N support counts reach zero and retracts with no
//     probes. This is the recompute-on-delete pathology the counting
//     subsystem exists to kill, and the ≥2x gate lives here.
//   - tinyextent — fig. 7 massive update waves against views whose
//     extents are far smaller than the triggering Δ (the monitored
//     condition is empty throughout): the paper's case for naive
//     recompute. The hybrid twin must observably switch at least one
//     view to the recompute strategy.
//
// Every workload warms up first (paying the one-time lazy count
// reseeds and firing the rule once so the equivalence gate covers
// firings) and then measures a steady-state interval. The harness
// asserts observable equivalence — identical rule firings and
// byte-identical final store snapshots — plus the non-vacuity gates:
// fewer zero-effect executions under counting on the duplicate-support
// delete workloads, ≥2x fewer tuples scanned on deleteheavy, and ≥1
// strategy switch on the chooser workload.

// CountingRow is one measured point of the counting/hybrid A/B. Off is
// the standard incremental twin, On the counting (and, for tinyextent,
// hybrid) twin.
type CountingRow struct {
	Workload string `json:"workload"`
	DBSize   int    `json:"db_size"`
	Txns     int    `json:"txns"`

	OffNs int64 `json:"off_ns"`
	OnNs  int64 `json:"on_ns"`

	// Monitor telemetry over the measured (post-warmup) interval.
	OffTel Telemetry `json:"off_telemetry"`
	OnTel  Telemetry `json:"on_telemetry"`

	// Zero-effect differential executions (ran, emitted nothing).
	OffZero int64 `json:"off_zero_effect_execs"`
	OnZero  int64 `json:"on_zero_effect_execs"`

	// Orders is the rule-firing count — identical across twins by the
	// equivalence gate.
	Orders int `json:"orders"`

	// Switches counts hybrid strategy switches on the On twin
	// (tinyextent only; the delete twins run with hybrid off so the
	// A/B isolates counting).
	Switches uint64 `json:"strategy_switches,omitempty"`
}

// countingInv is one twin of the counting workloads. For the inventory
// workloads it is the shared-threshold §3.1 database with K suppliers
// per item, all at the same delivery time — every derived threshold
// tuple has support K, so deleting one supplier is a support
// decrement, not a retraction. For deleteheavy it is the witness
// database instead (Wits set, Sups nil).
type countingInv struct {
	*Inventory
	K    int
	Sups [][]types.Value // per-item suppliers; [i][0] is the original
	Wits []types.Value   // deleteheavy witnesses; [0] carries wit=1
}

// countingInventory builds one inventory twin: n items × k suppliers,
// counting and hybrid as given, monitor activated last so the network
// compiles with the requested maintenance configuration.
func countingInventory(n, k int, counting, hybrid bool) (*countingInv, error) {
	inv, err := NewInventory(Config{N: n, Mode: rules.Incremental, SharedThreshold: true})
	if err != nil {
		return nil, err
	}
	ci := &countingInv{Inventory: inv, K: k, Sups: make([][]types.Value, n)}
	cat, st := inv.Sess.Catalog(), inv.Sess.Store()
	for i := 0; i < n; i++ {
		ci.Sups[i] = append(ci.Sups[i], inv.Sups[i])
		for j := 1; j < k; j++ {
			oid, err := cat.NewObject("supplier")
			if err != nil {
				return nil, err
			}
			sup := types.Obj(oid)
			st.Insert("type:supplier", types.Tuple{sup})
			if _, err := st.Set("supplies", []types.Value{sup}, []types.Value{inv.Items[i]}); err != nil {
				return nil, err
			}
			if _, err := st.Set("delivery_time", []types.Value{inv.Items[i], sup}, []types.Value{types.Int(2)}); err != nil {
				return nil, err
			}
			ci.Sups[i] = append(ci.Sups[i], sup)
		}
	}
	inv.Sess.SetCounting(counting)
	inv.Sess.SetHybrid(hybrid)
	if _, err := inv.Sess.Exec("activate monitor_items();"); err != nil {
		return nil, err
	}
	return ci, nil
}

// witnessDB builds one deleteheavy twin: n items, w witnesses of which
// only the first derives the shared view — so deleting its wit row
// retracts tagged(x) for every item, and re-proving underivability
// costs the standard monitor a fruitless scan of all w witnesses per
// item.
func witnessDB(n, w int, counting, hybrid bool) (*countingInv, error) {
	inv := &Inventory{Sess: amosql.NewSession(rules.Incremental), N: n}
	err := inv.Sess.RegisterProcedure("order", func(args []types.Value) error {
		inv.Orders++
		return nil
	})
	if err != nil {
		return nil, err
	}
	_, err = inv.Sess.Exec(`
create type item;
create type witness;
create function stock(item) -> integer;
create function alive(item) -> integer;
create function wit(witness) -> integer;
create shared function tagged(item x) -> integer
    as select v for each witness w, integer v
    where alive(x) = v and wit(w) < v;
create rule watch_tagged() as
    when for each item i
    where tagged(i) = 1 and stock(i) < 10
    do order(i, stock(i));
`)
	if err != nil {
		return nil, err
	}
	ci := &countingInv{Inventory: inv, K: w}
	cat, st := inv.Sess.Catalog(), inv.Sess.Store()
	for i := 0; i < n; i++ {
		oid, err := cat.NewObject("item")
		if err != nil {
			return nil, err
		}
		item := types.Obj(oid)
		inv.Items = append(inv.Items, item)
		st.Insert("type:item", types.Tuple{item})
		for rel, v := range map[string]int64{"stock": 5000, "alive": 1} {
			if _, err := st.Set(rel, []types.Value{item}, []types.Value{types.Int(v)}); err != nil {
				return nil, err
			}
		}
	}
	for j := 0; j < w; j++ {
		oid, err := cat.NewObject("witness")
		if err != nil {
			return nil, err
		}
		wt := types.Obj(oid)
		ci.Wits = append(ci.Wits, wt)
		st.Insert("type:witness", types.Tuple{wt})
		v := int64(5)
		if j == 0 {
			v = 0 // the sole witness below every alive(x)=1 bound
		}
		if _, err := st.Set("wit", []types.Value{wt}, []types.Value{types.Int(v)}); err != nil {
			return nil, err
		}
	}
	inv.Sess.SetCounting(counting)
	inv.Sess.SetHybrid(hybrid)
	if _, err := inv.Sess.Exec("activate watch_tagged();"); err != nil {
		return nil, err
	}
	return ci, nil
}

// warmupInventory pays the one-time lazy count reseeds of both
// differenced views (threshold via a supplies delete/restore, the
// condition via a below/above threshold quantity swing) and fires the
// rule once so the twin-equivalence gate covers firings.
func (ci *countingInv) warmupInventory() error {
	st := ci.Sess.Store()
	steps := []func() error{
		func() error {
			_, err := st.Delete("supplies", types.Tuple{ci.Sups[0][1], ci.Items[0]})
			return err
		},
		func() error {
			_, err := st.Insert("supplies", types.Tuple{ci.Sups[0][1], ci.Items[0]})
			return err
		},
		func() error { return ci.SetQuantity(0, 100) },
		func() error { return ci.SetQuantity(0, 5000) },
	}
	for _, s := range steps {
		if err := ci.Txn(s); err != nil {
			return err
		}
	}
	return nil
}

// warmupWitness is the deleteheavy analogue: a witness delete/restore
// cycle reseeds tagged's counts, a stock swing reseeds the condition's
// and fires the rule once.
func (ci *countingInv) warmupWitness() error {
	st := ci.Sess.Store()
	steps := []func() error{
		func() error {
			_, err := st.Set("wit", []types.Value{ci.Wits[0]}, []types.Value{types.Int(5)})
			return err
		},
		func() error {
			_, err := st.Set("wit", []types.Value{ci.Wits[0]}, []types.Value{types.Int(0)})
			return err
		},
		func() error {
			_, err := st.Set("stock", []types.Value{ci.Items[0]}, []types.Value{types.Int(5)})
			return err
		},
		func() error {
			_, err := st.Set("stock", []types.Value{ci.Items[0]}, []types.Value{types.Int(5000)})
			return err
		},
	}
	for _, s := range steps {
		if err := ci.Txn(s); err != nil {
			return err
		}
	}
	return nil
}

// RunDeleteTxns runs txns small transactions: pair t deletes item
// (t/2)%N's duplicate supplier derivation, the next restores it.
func (ci *countingInv) RunDeleteTxns(txns int) error {
	st := ci.Sess.Store()
	for t := 0; t < txns; t++ {
		i := (t / 2) % ci.N
		sup := ci.Sups[i][1]
		del := t%2 == 0
		err := ci.Txn(func() error {
			if del {
				_, err := st.Delete("supplies", types.Tuple{sup, ci.Items[i]})
				return err
			}
			_, err := st.Insert("supplies", types.Tuple{sup, ci.Items[i]})
			return err
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// RunMassDeleteTxns runs rounds massive transactions alternating
// delete-all / restore-all of every item's duplicate supplier — the
// fig. 7 shape with deletion waves.
func (ci *countingInv) RunMassDeleteTxns(rounds int) error {
	st := ci.Sess.Store()
	for r := 0; r < rounds; r++ {
		del := r%2 == 0
		err := ci.Txn(func() error {
			for i, item := range ci.Items {
				sup := ci.Sups[i][1]
				if del {
					if _, err := st.Delete("supplies", types.Tuple{sup, item}); err != nil {
						return err
					}
				} else if _, err := st.Insert("supplies", types.Tuple{sup, item}); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// RunWitnessTxns runs txns transactions alternating delete/restore of
// the sole deriving witness: every delete retracts tagged(x) for all N
// items, every restore re-derives them.
func (ci *countingInv) RunWitnessTxns(txns int) error {
	st := ci.Sess.Store()
	for t := 0; t < txns; t++ {
		v := int64(5) // above the bound: retracts tagged(x) for all x
		if t%2 == 1 {
			v = 0 // back below: re-derives them
		}
		err := ci.Txn(func() error {
			_, err := st.Set("wit", []types.Value{ci.Wits[0]}, []types.Value{types.Int(v)})
			return err
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// zeroEffect reads the cumulative zero-effect execution counter.
func zeroEffect(inv *Inventory) int64 {
	return inv.Sess.Observability().Registry.CounterValue("partdiff_propnet_zero_effect_total")
}

// countingWorkload is one twin-measured workload of RunCounting.
type countingWorkload struct {
	name   string
	hybrid bool // hybrid chooser on the On twin (tinyextent)
	build  func(n int, on bool) (*countingInv, error)
	warmup func(ci *countingInv) error // nil: measure cold
	txns   func(txns int) int
	run    func(ci *countingInv, txns int) error
}

func countingWorkloads(txns int) []countingWorkload {
	return []countingWorkload{
		{name: "fig6del",
			build:  func(n int, on bool) (*countingInv, error) { return countingInventory(n, 6, on, false) },
			warmup: (*countingInv).warmupInventory,
			txns:   func(int) int { return txns },
			run:    (*countingInv).RunDeleteTxns},
		{name: "fig7del",
			build:  func(n int, on bool) (*countingInv, error) { return countingInventory(n, 6, on, false) },
			warmup: (*countingInv).warmupInventory,
			txns:   func(int) int { return 6 },
			run:    (*countingInv).RunMassDeleteTxns},
		{name: "deleteheavy",
			build:  func(n int, on bool) (*countingInv, error) { return witnessDB(n, 16, on, false) },
			warmup: (*countingInv).warmupWitness,
			txns:   func(int) int { return txns },
			run:    (*countingInv).RunWitnessTxns},
		{name: "tinyextent", hybrid: true,
			// Counting stays off on both twins: the A/B isolates the
			// chooser, whose recompute decision is what's under test.
			// The condition is flat (fully expanded, the paper's fig. 7
			// configuration): one view over three updated influents, so
			// one recompute per wave replaces six seeded differentials.
			build: func(n int, on bool) (*countingInv, error) {
				inv, err := NewInventory(Config{N: n, Mode: rules.Incremental})
				if err != nil {
					return nil, err
				}
				inv.Sess.SetHybrid(on)
				if _, err := inv.Sess.Exec("activate monitor_items();"); err != nil {
					return nil, err
				}
				return &countingInv{Inventory: inv, K: 1}, nil
			},
			txns: func(int) int { return 8 },
			run: func(ci *countingInv, t int) error {
				for r := 0; r < t; r++ {
					if err := ci.RunFig7Transaction(int64(r)); err != nil {
						return err
					}
				}
				return nil
			}},
	}
}

// RunCounting measures every counting workload at every database size.
// It fails if the twins observably diverge, if counting does not reduce
// zero-effect executions on the duplicate-support delete workloads, if
// it does not beat the probe-based baseline by ≥2x scanned tuples on
// deleteheavy, or if the hybrid twin of the chooser workload never
// switches to recompute — the A/B must never be vacuous.
func RunCounting(sizes []int, txns int) ([]CountingRow, error) {
	out := make([]CountingRow, 0, len(sizes)*4)
	for _, n := range sizes {
		for _, w := range countingWorkloads(txns) {
			wt := w.txns(txns)
			row := CountingRow{Workload: w.name, DBSize: n, Txns: wt}
			var snaps []map[string][]types.Tuple
			var orders []int
			for _, on := range []bool{false, true} {
				ci, err := w.build(n, on)
				if err != nil {
					return nil, fmt.Errorf("%s: %w", w.name, err)
				}
				if w.warmup != nil {
					if err := w.warmup(ci); err != nil {
						return nil, fmt.Errorf("%s warmup: %w", w.name, err)
					}
				}
				before := ci.Telemetry()
				zero0 := zeroEffect(ci.Inventory)
				start := time.Now()
				if err := w.run(ci, wt); err != nil {
					return nil, fmt.Errorf("%s: %w", w.name, err)
				}
				ns := time.Since(start).Nanoseconds()
				tel := ci.Telemetry().Sub(before)
				zero := zeroEffect(ci.Inventory) - zero0
				if on {
					row.OnNs, row.OnTel, row.OnZero = ns, tel, zero
					row.Switches = ci.Sess.Rules().Maintainer().Switches()
					if w.hybrid {
						if row.Switches == 0 {
							return nil, fmt.Errorf("%s/items=%d: hybrid twin never switched strategy; the chooser demonstration is vacuous", w.name, n)
						}
						recomp := false
						for _, d := range ci.Sess.Rules().Maintainer().Decisions() {
							if d.Strategy == maint.Recompute {
								recomp = true
								break
							}
						}
						if !recomp {
							return nil, fmt.Errorf("%s/items=%d: hybrid twin never chose recompute on a tiny-extent workload", w.name, n)
						}
					}
				} else {
					row.OffNs, row.OffTel, row.OffZero = ns, tel, zero
				}
				snaps = append(snaps, ci.Sess.Store().Snapshot())
				orders = append(orders, ci.Orders)
			}
			if orders[0] != orders[1] {
				return nil, fmt.Errorf("%s/items=%d: firings diverged: off=%d on=%d", w.name, n, orders[0], orders[1])
			}
			row.Orders = orders[0]
			if !reflect.DeepEqual(snaps[0], snaps[1]) {
				return nil, fmt.Errorf("%s/items=%d: final states diverged between counting and standard twins", w.name, n)
			}
			if w.warmup != nil && row.Orders == 0 {
				return nil, fmt.Errorf("%s/items=%d: no rule firings; the equivalence gate is vacuous", w.name, n)
			}
			if w.name == "fig6del" || w.name == "fig7del" {
				if row.OnZero >= row.OffZero {
					return nil, fmt.Errorf("%s/items=%d: counting did not reduce zero-effect executions (off=%d on=%d)",
						w.name, n, row.OffZero, row.OnZero)
				}
			}
			if w.name == "deleteheavy" && row.OnTel.TuplesScanned*2 > row.OffTel.TuplesScanned {
				return nil, fmt.Errorf("deleteheavy/items=%d: counting under 2x on scanned tuples (off=%d on=%d)",
					n, row.OffTel.TuplesScanned, row.OnTel.TuplesScanned)
			}
			out = append(out, row)
		}
	}
	return out, nil
}
