package bench

// Telemetry is a snapshot of the monitor-relevant meters in the
// inventory session's metrics registry. Subtracting two snapshots
// (After.Sub(Before)) isolates the work done by a measured interval —
// the registry itself accumulates from session creation, including
// schema loading and rule activation.
type Telemetry struct {
	Propagations  int64 `json:"propagations"`
	Differentials int64 `json:"differentials_executed"`
	NaiveRecomp   int64 `json:"naive_recomputations"`
	TuplesScanned int64 `json:"tuples_scanned"`
	// DeltaSets counts Δ-sets emitted by partial differentials;
	// DeltaTuples is the total tuples across them (their ratio is the
	// mean Δ size the paper's efficiency argument rests on).
	DeltaSets   int64 `json:"delta_sets_emitted"`
	DeltaTuples int64 `json:"delta_tuples_emitted"`
}

// Telemetry reads the current cumulative meter values.
func (inv *Inventory) Telemetry() Telemetry {
	r := inv.Sess.Observability().Registry
	t := Telemetry{
		Propagations:  r.CounterValue("partdiff_propnet_propagations_total"),
		Differentials: r.CounterValue("partdiff_propnet_differentials_total"),
		NaiveRecomp:   r.CounterValue("partdiff_rules_naive_recomputations_total"),
		TuplesScanned: r.CounterValue("partdiff_eval_tuples_scanned_total"),
	}
	for _, p := range r.Gather() {
		if p.Name == "partdiff_propnet_differential_emitted_tuples" {
			t.DeltaSets = p.Count
			t.DeltaTuples = int64(p.Value)
		}
	}
	return t
}

// Sub returns the element-wise difference t - o.
func (t Telemetry) Sub(o Telemetry) Telemetry {
	return Telemetry{
		Propagations:  t.Propagations - o.Propagations,
		Differentials: t.Differentials - o.Differentials,
		NaiveRecomp:   t.NaiveRecomp - o.NaiveRecomp,
		TuplesScanned: t.TuplesScanned - o.TuplesScanned,
		DeltaSets:     t.DeltaSets - o.DeltaSets,
		DeltaTuples:   t.DeltaTuples - o.DeltaTuples,
	}
}

// MeanDeltaSize returns the mean emitted Δ-set size, or 0 when no
// differential emitted anything.
func (t Telemetry) MeanDeltaSize() float64 {
	if t.DeltaSets == 0 {
		return 0
	}
	return float64(t.DeltaTuples) / float64(t.DeltaSets)
}
