package bench

import (
	"fmt"
	"reflect"
	"time"

	"partdiff/internal/amosql"
	"partdiff/internal/rules"
	"partdiff/internal/types"
)

// This file holds the static-pruning experiment (`bench -exp prune`):
// the whole-network Δ-effect analyzer off vs on, over three workloads.
//
//   - fig6 — the fig. 6 workload after sealing every dimension relation
//     (`declare min_stock readonly; ...`). Only quantity ever changes,
//     so the analyzer proves most of the compiled differentials
//     trigger-impossible (OL301) and drops them from the schedule.
//   - fig7 — the fig. 7 workload, which updates three influents; only
//     the relations it leaves alone are sealed, so a smaller share of
//     the network is provably dead.
//   - deadbranch — a rule with a live disjunct plus a second disjunct
//     that joins a shared view on a constant the view's body
//     contradicts. Differencing stops specializing at shared views, so
//     without the interprocedural pass (OL302) the dead disjunct's
//     differentials run on every quantity update and never produce a
//     tuple; with it they are pruned and the runtime differential count
//     drops.
//
// Each workload runs on twin databases (pruning off / pruning on) and
// the harness asserts observable equivalence: identical rule firings
// and byte-identical final store snapshots. A workload whose pruned
// twin prunes nothing fails the run — the experiment must never
// silently measure two identical networks.

// PruneRow is one measured point of the static-pruning A/B.
type PruneRow struct {
	Workload string `json:"workload"`
	DBSize   int    `json:"db_size"`
	Txns     int    `json:"txns"`
	OffNs    int64  `json:"off_ns"` // total wall time, pruning off
	OnNs     int64  `json:"on_ns"`  // total wall time, pruning on

	// Network shape, from the pruned twin: Compiled = Scheduled +
	// Pruned. The off twin schedules all Compiled differentials.
	Compiled  int `json:"compiled_differentials"`
	Scheduled int `json:"scheduled_differentials"`
	Pruned    int `json:"pruned_differentials"`

	// Runtime differential executions over the measured interval.
	OffDiffs int64 `json:"off_differential_execs"`
	OnDiffs  int64 `json:"on_differential_execs"`

	// Profiler zero-effect executions — differentials that ran but
	// produced an empty Δ. Static pruning eliminates the provable subset
	// before it runs, so OnZero ≤ OffZero, strictly on deadbranch.
	OffZero int64 `json:"off_zero_effect_execs"`
	OnZero  int64 `json:"on_zero_effect_execs"`
}

// pruneDB is one twin: a session, its workload, and the firing counter.
type pruneDB struct {
	inv  *Inventory
	run  func() error
	name string
}

// pruneWorkload builds one twin of a named workload at size n. The
// declare statements run after population (capabilities only restrict)
// and before activation, though the manager would also rebuild the
// network on a later declaration.
type pruneWorkload struct {
	name  string
	build func(n, txns int, pruned bool) (*pruneDB, error)
}

// sealedInventory builds the §3.1 inventory, seals the given relations
// read-only, then activates the monitor.
func sealedInventory(n int, pruned bool, sealed []string) (*Inventory, error) {
	inv, err := NewInventory(Config{N: n, Mode: rules.Incremental})
	if err != nil {
		return nil, err
	}
	inv.Sess.SetStaticPruning(pruned)
	for _, rel := range sealed {
		if _, err := inv.Sess.Exec(fmt.Sprintf("declare %s readonly;", rel)); err != nil {
			return nil, err
		}
	}
	if _, err := inv.Sess.Exec("activate monitor_items();"); err != nil {
		return nil, err
	}
	return inv, nil
}

// fig6Sealed seals every relation the fig. 6 workload never touches.
var fig6Sealed = []string{
	"min_stock", "max_stock", "consume_freq", "supplies", "delivery_time",
	"item", "supplier",
}

// fig7Sealed seals only what the fig. 7 workload leaves alone (it
// updates quantity, delivery_time and consume_freq).
var fig7Sealed = []string{"min_stock", "max_stock", "supplies", "item", "supplier"}

// deadbranchDB builds the OL302 workload: rule watch_dead has a live
// low-stock disjunct plus a dead one — flagged/2 constrains its result
// to 3 inside the shared view, and the disjunct asks for 9.
func deadbranchDB(n int, pruned bool) (*Inventory, error) {
	inv := &Inventory{Sess: amosql.NewSession(rules.Incremental), N: n}
	err := inv.Sess.RegisterProcedure("order", func(args []types.Value) error {
		inv.Orders++
		return nil
	})
	if err != nil {
		return nil, err
	}
	inv.Sess.SetStaticPruning(pruned)
	_, err = inv.Sess.Exec(`
create type item;
create function quantity(item) -> integer;
create function threshold(item) -> integer;
create function status(item) -> integer;
create shared function flagged(item i) -> integer
    as select s for each integer s where status(i) = s and s = 3;
create rule watch_dead() as
    when for each item i
    where quantity(i) < threshold(i)
       or (quantity(i) < -1000 and flagged(i) = 9)
    do order(i, quantity(i));
`)
	if err != nil {
		return nil, err
	}
	cat, st := inv.Sess.Catalog(), inv.Sess.Store()
	for i := 0; i < n; i++ {
		oid, err := cat.NewObject("item")
		if err != nil {
			return nil, err
		}
		item := types.Obj(oid)
		inv.Items = append(inv.Items, item)
		st.Insert("type:item", types.Tuple{item})
		for rel, v := range map[string]int64{
			"quantity": 5000, "threshold": 100, "status": 3,
		} {
			if _, err := st.Set(rel, []types.Value{item}, []types.Value{types.Int(v)}); err != nil {
				return nil, err
			}
		}
	}
	if _, err := inv.Sess.Exec("activate watch_dead();"); err != nil {
		return nil, err
	}
	return inv, nil
}

func pruneWorkloads() []pruneWorkload {
	return []pruneWorkload{
		{"fig6", func(n, txns int, pruned bool) (*pruneDB, error) {
			inv, err := sealedInventory(n, pruned, fig6Sealed)
			if err != nil {
				return nil, err
			}
			return &pruneDB{inv: inv, name: "fig6",
				run: func() error { return inv.RunFig6Transactions(txns) }}, nil
		}},
		{"fig7", func(n, txns int, pruned bool) (*pruneDB, error) {
			inv, err := sealedInventory(n, pruned, fig7Sealed)
			if err != nil {
				return nil, err
			}
			// Scale the massive transactions down: each touches all n
			// items three times, so a handful suffices.
			rounds := txns/10 + 1
			return &pruneDB{inv: inv, name: "fig7", run: func() error {
				for r := 0; r < rounds; r++ {
					if err := inv.RunFig7Transaction(int64(r)); err != nil {
						return err
					}
				}
				return nil
			}}, nil
		}},
		{"deadbranch", func(n, txns int, pruned bool) (*pruneDB, error) {
			inv, err := deadbranchDB(n, pruned)
			if err != nil {
				return nil, err
			}
			return &pruneDB{inv: inv, name: "deadbranch",
				run: func() error { return inv.RunFig6Transactions(txns) }}, nil
		}},
	}
}

// RunPrune measures every pruning workload at every database size. It
// fails if the pruned twin of any workload prunes nothing (the A/B
// would be vacuous) or if the twins observably diverge.
func RunPrune(sizes []int, txns int) ([]PruneRow, error) {
	out := make([]PruneRow, 0, len(sizes)*3)
	for _, n := range sizes {
		for _, w := range pruneWorkloads() {
			row := PruneRow{Workload: w.name, DBSize: n, Txns: txns}
			var snaps []map[string][]types.Tuple
			var orders []int
			for _, pruned := range []bool{false, true} {
				db, err := w.build(n, txns, pruned)
				if err != nil {
					return nil, fmt.Errorf("%s: %w", w.name, err)
				}
				// Profile both twins (same overhead on both sides of the
				// A/B) so zero-effect executions reconcile with pruning.
				db.inv.Sess.SetProfiling(true)
				net := db.inv.Sess.Rules().Network()
				if pruned {
					row.Compiled = net.CompiledDiffs()
					row.Scheduled = net.ScheduledDiffs()
					row.Pruned = net.PrunedCount()
				} else if got := net.PrunedCount(); got != 0 {
					return nil, fmt.Errorf("%s: pruning disabled yet %d differentials pruned", w.name, got)
				}
				before := db.inv.Telemetry()
				start := time.Now()
				if err := db.run(); err != nil {
					return nil, fmt.Errorf("%s: %w", w.name, err)
				}
				ns := time.Since(start).Nanoseconds()
				diffs := db.inv.Telemetry().Sub(before).Differentials
				var zero int64
				for _, pt := range db.inv.Sess.Observability().Profiler.Snapshot() {
					zero += pt.ZeroEffect
				}
				if pruned {
					row.OnNs, row.OnDiffs, row.OnZero = ns, diffs, zero
				} else {
					row.OffNs, row.OffDiffs, row.OffZero = ns, diffs, zero
				}
				snaps = append(snaps, db.inv.Sess.Store().Snapshot())
				orders = append(orders, db.inv.Orders)
			}
			if row.Pruned == 0 {
				return nil, fmt.Errorf("%s/items=%d: analyzer pruned nothing; the A/B is vacuous", w.name, n)
			}
			if orders[0] != orders[1] {
				return nil, fmt.Errorf("%s/items=%d: firings diverged: off=%d on=%d", w.name, n, orders[0], orders[1])
			}
			if !reflect.DeepEqual(snaps[0], snaps[1]) {
				return nil, fmt.Errorf("%s/items=%d: final states diverged between pruned and unpruned twins", w.name, n)
			}
			out = append(out, row)
		}
	}
	return out, nil
}
