package bench

import (
	"os"
	"time"

	"partdiff/internal/rules"
	"partdiff/internal/wal"
)

// DurRow is one measured point of the durability experiment: the fig. 6
// single-update commit workload against a write-ahead-logged database
// under one fsync policy.
type DurRow struct {
	Policy string
	Txns   int
	Ns     int64 // total wall time for all transactions
	Fsyncs int64 // log fsyncs issued during the measured interval
}

// NsPerOp returns the mean commit latency.
func (r DurRow) NsPerOp() int64 {
	if r.Txns == 0 {
		return 0
	}
	return r.Ns / int64(r.Txns)
}

// RunDurability measures commit latency with write-ahead logging under
// every sync policy: always (fsync before each ack), group (coalesced
// fsyncs), none (page cache only). Each run uses a fresh temporary data
// directory, discarded afterwards.
func RunDurability(n, txns int) ([]DurRow, error) {
	out := make([]DurRow, 0, 3)
	for _, p := range []wal.SyncPolicy{wal.SyncAlways, wal.SyncGrouped, wal.SyncNone} {
		row, err := runDurabilityOne(n, txns, p)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

func runDurabilityOne(n, txns int, p wal.SyncPolicy) (DurRow, error) {
	dir, err := os.MkdirTemp("", "partdiff-bench-")
	if err != nil {
		return DurRow{}, err
	}
	defer os.RemoveAll(dir)
	inv, err := NewInventory(Config{N: n, Mode: rules.Incremental, Activate: true, Dir: dir, Sync: p})
	if err != nil {
		return DurRow{}, err
	}
	defer inv.Sess.Close()
	reg := inv.Sess.Observability().Registry
	fsyncs := reg.CounterValue("partdiff_wal_fsyncs_total")
	start := time.Now()
	if err := inv.RunFig6Transactions(txns); err != nil {
		return DurRow{}, err
	}
	return DurRow{
		Policy: p.String(),
		Txns:   txns,
		Ns:     time.Since(start).Nanoseconds(),
		Fsyncs: reg.CounterValue("partdiff_wal_fsyncs_total") - fsyncs,
	}, nil
}
