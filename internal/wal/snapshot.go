package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"partdiff/internal/faultinject"
	"partdiff/internal/types"
)

// snapMagic is the snapshot file header; the trailing digit is the
// format version.
const snapMagic = "AMOSNAP1"

// snapKeep is how many snapshot generations a checkpoint retains.
const snapKeep = 2

// Table is one serialized base relation.
type Table struct {
	Name    string
	Arity   int
	KeyCols []int
	Tuples  []types.Tuple
}

// State is a complete logical snapshot of the database: the DDL journal
// (source text of every schema statement in execution order — types,
// functions, rules, activations), the object universe, the interface
// variables, and every base relation's tuples. Seq is the last log
// sequence number the snapshot covers; recovery replays only records
// with a higher seq.
type State struct {
	Seq     uint64
	DDL     []string
	NextOID types.OID
	Objects []ObjectRec
	Iface   []Bind
	Tables  []Table
}

// MarshalState renders the snapshot file image: magic, payload, and a
// trailing CRC32-C of the payload.
func MarshalState(st *State) []byte {
	b := []byte(snapMagic)
	b = binary.AppendUvarint(b, st.Seq)
	b = binary.AppendUvarint(b, uint64(len(st.DDL)))
	for _, s := range st.DDL {
		b = appendString(b, s)
	}
	b = binary.AppendUvarint(b, uint64(st.NextOID))
	b = binary.AppendUvarint(b, uint64(len(st.Objects)))
	for _, o := range st.Objects {
		b = binary.AppendUvarint(b, uint64(o.OID))
		b = appendString(b, o.Type)
	}
	b = appendBinds(b, st.Iface)
	b = binary.AppendUvarint(b, uint64(len(st.Tables)))
	for _, t := range st.Tables {
		b = appendString(b, t.Name)
		b = binary.AppendUvarint(b, uint64(t.Arity))
		b = binary.AppendUvarint(b, uint64(len(t.KeyCols)))
		for _, c := range t.KeyCols {
			b = binary.AppendUvarint(b, uint64(c))
		}
		b = binary.AppendUvarint(b, uint64(len(t.Tuples)))
		for _, tp := range t.Tuples {
			b = appendTuple(b, tp)
		}
	}
	crc := crc32.Checksum(b[len(snapMagic):], castagnoli)
	return binary.LittleEndian.AppendUint32(b, crc)
}

// UnmarshalState parses and CRC-verifies a snapshot image.
func UnmarshalState(data []byte) (*State, error) {
	if len(data) < len(snapMagic)+4 || string(data[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("wal: not a version-%q snapshot", snapMagic)
	}
	payload := data[len(snapMagic) : len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(payload, castagnoli) != want {
		return nil, fmt.Errorf("wal: snapshot CRC mismatch")
	}
	r := &reader{b: payload}
	st := &State{Seq: r.uvarint()}
	n := r.count()
	for i := 0; i < n && r.err() == nil; i++ {
		st.DDL = append(st.DDL, r.string())
	}
	st.NextOID = types.OID(r.uvarint())
	n = r.count()
	for i := 0; i < n && r.err() == nil; i++ {
		st.Objects = append(st.Objects, ObjectRec{OID: types.OID(r.uvarint()), Type: r.string()})
	}
	st.Iface = r.binds()
	n = r.count()
	for i := 0; i < n && r.err() == nil; i++ {
		t := Table{Name: r.string(), Arity: int(r.uvarint())}
		kn := r.count()
		for k := 0; k < kn && r.err() == nil; k++ {
			t.KeyCols = append(t.KeyCols, int(r.uvarint()))
		}
		tn := r.count()
		for k := 0; k < tn && r.err() == nil; k++ {
			t.Tuples = append(t.Tuples, r.tuple())
		}
		st.Tables = append(st.Tables, t)
	}
	if err := r.err(); err != nil {
		return nil, err
	}
	if !r.done() {
		return nil, fmt.Errorf("wal: trailing bytes in snapshot")
	}
	return st, nil
}

func snapName(seq uint64) string { return fmt.Sprintf("snap-%016x.snap", seq) }

// WriteSnapshot durably writes st into dir (write to a temp file, fsync
// it, rename into place, fsync the directory) and prunes old snapshot
// generations, keeping the newest snapKeep. The log must be truncated
// only AFTER this returns: a crash between the two leaves records the
// snapshot already covers, which replay skips by seq.
func WriteSnapshot(dir string, st *State, inj *faultinject.Injector, met *Metrics) error {
	if met == nil {
		met = &Metrics{}
	}
	if err := inj.Fire(faultinject.WalCheckpoint); err != nil {
		return fmt.Errorf("wal checkpoint: %w", err)
	}
	start := time.Now()
	data := MarshalState(st)
	final := filepath.Join(dir, snapName(st.Seq))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	met.Checkpoints.Inc()
	met.CheckpointSeconds.Observe(time.Since(start).Seconds())
	met.SnapshotBytes.Set(int64(len(data)))
	pruneSnapshots(dir)
	return nil
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// listSnapshots returns the snapshot files in dir, newest (highest seq)
// first.
func listSnapshots(dir string) []string {
	names, err := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if err != nil {
		return nil
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	return names
}

// pruneSnapshots removes all but the newest snapKeep snapshots and any
// leftover temp files. Best effort.
func pruneSnapshots(dir string) {
	snaps := listSnapshots(dir)
	for i, p := range snaps {
		if i >= snapKeep {
			os.Remove(p)
		}
	}
	if tmps, err := filepath.Glob(filepath.Join(dir, "snap-*.tmp")); err == nil {
		for _, p := range tmps {
			os.Remove(p)
		}
	}
}

// ReadLatestSnapshot loads the newest valid snapshot in dir, or (nil,
// nil) when none exists. A snapshot failing its CRC is skipped in favor
// of the previous generation — snapshots are renamed into place
// atomically, so this only happens under media corruption, and the
// older generation is the best remaining truth.
func ReadLatestSnapshot(dir string) (*State, error) {
	var firstErr error
	for _, p := range listSnapshots(dir) {
		data, err := os.ReadFile(p)
		if err == nil {
			var st *State
			if st, err = UnmarshalState(data); err == nil {
				return st, nil
			}
		}
		if firstErr == nil {
			firstErr = fmt.Errorf("%s: %w", filepath.Base(p), err)
		}
	}
	if firstErr != nil {
		return nil, fmt.Errorf("wal: no readable snapshot: %w", firstErr)
	}
	return nil, nil
}

// IsSnapshotFile reports whether name looks like a snapshot file —
// used by SaveTo to refuse clobbering an unrelated directory. Exported
// for the session layer.
func IsSnapshotFile(name string) bool {
	return strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap")
}
