package wal

import (
	"encoding/binary"
	"fmt"
	"math"

	"partdiff/internal/storage"
	"partdiff/internal/types"
)

// The binary codec for values, tuples, events and records. Everything
// is length-prefixed with uvarints; values carry an explicit kind byte
// so the encoding is lossless (unlike types.Value.Key, which normalizes
// integral floats for set semantics).

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendValue(b []byte, v types.Value) []byte {
	b = append(b, byte(v.Kind))
	switch v.Kind {
	case types.KindNil:
	case types.KindBool, types.KindInt:
		b = binary.AppendVarint(b, v.I)
	case types.KindFloat:
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v.F))
	case types.KindString:
		b = appendString(b, v.S)
	case types.KindObject:
		b = binary.AppendUvarint(b, uint64(v.O))
	}
	return b
}

func appendTuple(b []byte, t types.Tuple) []byte {
	b = binary.AppendUvarint(b, uint64(len(t)))
	for _, v := range t {
		b = appendValue(b, v)
	}
	return b
}

func appendEvent(b []byte, e storage.Event) []byte {
	b = append(b, byte(e.Kind))
	b = appendString(b, e.Relation)
	return appendTuple(b, e.Tuple)
}

// marshal renders the record payload (the CRC-protected part of a
// frame).
func (r *Record) marshal() []byte {
	b := binary.AppendUvarint(nil, r.Seq)
	b = append(b, byte(r.Kind))
	switch r.Kind {
	case RecDDL:
		b = appendString(b, r.Stmt)
	case RecCommit:
		b = binary.AppendUvarint(b, uint64(len(r.Events)))
		for _, e := range r.Events {
			b = appendEvent(b, e)
		}
		b = binary.AppendUvarint(b, uint64(len(r.ActEvents)))
		for _, e := range r.ActEvents {
			b = appendEvent(b, e)
		}
		b = binary.AppendUvarint(b, uint64(len(r.ObjNews)))
		for _, o := range r.ObjNews {
			b = binary.AppendUvarint(b, uint64(o.OID))
			b = appendString(b, o.Type)
		}
		b = binary.AppendUvarint(b, uint64(len(r.ObjDels)))
		for _, oid := range r.ObjDels {
			b = binary.AppendUvarint(b, uint64(oid))
		}
		b = appendBinds(b, r.Binds)
	case RecIface:
		b = appendBinds(b, r.Binds)
	}
	return b
}

func appendBinds(b []byte, binds []Bind) []byte {
	b = binary.AppendUvarint(b, uint64(len(binds)))
	for _, bd := range binds {
		b = appendString(b, bd.Name)
		b = appendValue(b, bd.Value)
	}
	return b
}

// reader decodes the codec with sticky error handling: after the first
// failure every accessor returns zero values and err() is non-nil.
type reader struct {
	b   []byte
	off int
	e   error
}

func (r *reader) fail(format string, args ...any) {
	if r.e == nil {
		r.e = fmt.Errorf(format, args...)
	}
}

func (r *reader) err() error { return r.e }

func (r *reader) done() bool { return r.off >= len(r.b) }

func (r *reader) byte() byte {
	if r.e != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail("wal: truncated payload (byte at %d)", r.off)
		return 0
	}
	c := r.b[r.off]
	r.off++
	return c
}

func (r *reader) uvarint() uint64 {
	if r.e != nil {
		return 0
	}
	u, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("wal: bad uvarint at %d", r.off)
		return 0
	}
	r.off += n
	return u
}

func (r *reader) varint() int64 {
	if r.e != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail("wal: bad varint at %d", r.off)
		return 0
	}
	r.off += n
	return v
}

// count reads a collection length and bounds it by the bytes left, so a
// corrupt length cannot drive a huge allocation.
func (r *reader) count() int {
	n := r.uvarint()
	if r.e == nil && n > uint64(len(r.b)-r.off) {
		r.fail("wal: implausible count %d at %d", n, r.off)
		return 0
	}
	return int(n)
}

func (r *reader) string() string {
	n := r.count()
	if r.e != nil {
		return ""
	}
	if r.off+n > len(r.b) {
		r.fail("wal: truncated string at %d", r.off)
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

func (r *reader) value() types.Value {
	k := types.Kind(r.byte())
	switch k {
	case types.KindNil:
		return types.Value{}
	case types.KindBool, types.KindInt:
		return types.Value{Kind: k, I: r.varint()}
	case types.KindFloat:
		if r.e != nil {
			return types.Value{}
		}
		if r.off+8 > len(r.b) {
			r.fail("wal: truncated float at %d", r.off)
			return types.Value{}
		}
		f := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
		r.off += 8
		return types.Float(f)
	case types.KindString:
		return types.Str(r.string())
	case types.KindObject:
		return types.Obj(types.OID(r.uvarint()))
	default:
		r.fail("wal: unknown value kind %d", k)
		return types.Value{}
	}
}

func (r *reader) tuple() types.Tuple {
	n := r.count()
	if r.e != nil {
		return nil
	}
	t := make(types.Tuple, n)
	for i := range t {
		t[i] = r.value()
	}
	return t
}

func (r *reader) event() storage.Event {
	k := storage.EventKind(r.byte())
	if r.e == nil && k != storage.InsertEvent && k != storage.DeleteEvent {
		r.fail("wal: unknown event kind %d", k)
	}
	return storage.Event{Kind: k, Relation: r.string(), Tuple: r.tuple()}
}

func (r *reader) binds() []Bind {
	n := r.count()
	if r.e != nil || n == 0 {
		return nil
	}
	out := make([]Bind, n)
	for i := range out {
		out[i] = Bind{Name: r.string(), Value: r.value()}
	}
	return out
}

// decodeRecord parses one CRC-verified payload. Any structural problem
// is an error — the caller treats it as a torn/corrupt tail.
func decodeRecord(payload []byte) (Record, error) {
	r := &reader{b: payload}
	rec := Record{Seq: r.uvarint(), Kind: RecordKind(r.byte())}
	switch rec.Kind {
	case RecDDL:
		rec.Stmt = r.string()
	case RecCommit:
		n := r.count()
		if r.err() == nil && n > 0 {
			rec.Events = make([]storage.Event, n)
			for i := range rec.Events {
				rec.Events[i] = r.event()
			}
		}
		n = r.count()
		if r.err() == nil && n > 0 {
			rec.ActEvents = make([]storage.Event, n)
			for i := range rec.ActEvents {
				rec.ActEvents[i] = r.event()
			}
		}
		n = r.count()
		if r.err() == nil && n > 0 {
			rec.ObjNews = make([]ObjectRec, n)
			for i := range rec.ObjNews {
				rec.ObjNews[i] = ObjectRec{OID: types.OID(r.uvarint()), Type: r.string()}
			}
		}
		n = r.count()
		if r.err() == nil && n > 0 {
			rec.ObjDels = make([]types.OID, n)
			for i := range rec.ObjDels {
				rec.ObjDels[i] = types.OID(r.uvarint())
			}
		}
		rec.Binds = r.binds()
	case RecIface:
		rec.Binds = r.binds()
	default:
		r.fail("wal: unknown record kind %d", rec.Kind)
	}
	if err := r.err(); err != nil {
		return Record{}, err
	}
	if !r.done() {
		return Record{}, fmt.Errorf("wal: %d trailing bytes in record payload", len(payload)-r.off)
	}
	return rec, nil
}
