// Package wal is the durability subsystem: a binary, CRC-framed
// write-ahead log of committed transactions plus snapshot (checkpoint)
// files, giving the otherwise main-memory database crash recovery.
//
// The log records each committed transaction as its physical update
// events — the same storage events that feed the Δ-sets of the rule
// monitor — so recovery can replay the tail through the normal commit
// machinery and the propagation network re-derives ΔP and re-fires
// deferred rules deterministically (the §4.5 propagation algorithm is
// also the redo algorithm). Catalog DDL (create type/function/rule,
// activate/deactivate) is logged as source text and re-executed on
// recovery, which rebuilds the compiled condition definitions and rule
// actions that cannot be serialized.
//
// On-disk formats are versioned by their 8-byte magic ("AMOSWAL1",
// "AMOSNAP1"); a future format bumps the trailing digit. See DESIGN.md
// "Durability & recovery" for the byte-level layouts.
package wal

import (
	"partdiff/internal/storage"
	"partdiff/internal/types"
)

// SyncPolicy selects when the log is fsynced relative to commit
// acknowledgement.
type SyncPolicy int

// The sync policies.
const (
	// SyncAlways fsyncs the log before every commit acknowledgement:
	// full durability, one fsync per commit.
	SyncAlways SyncPolicy = iota
	// SyncGrouped acknowledges a commit after a background batcher has
	// fsynced past its record; concurrent committers share one fsync
	// (group commit). Durability is identical to SyncAlways — a commit
	// is never acknowledged before its record is on stable storage —
	// only the fsyncs are coalesced.
	SyncGrouped
	// SyncNone never fsyncs on the commit path. Committed records are in
	// the OS page cache: they survive a process crash (kill -9) but not
	// an OS crash or power loss.
	SyncNone
)

// String returns the policy name as used by the bench harness.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncGrouped:
		return "group"
	case SyncNone:
		return "none"
	default:
		return "unknown"
	}
}

// RecordKind discriminates log record types.
type RecordKind byte

// The record kinds.
const (
	// RecDDL is a schema statement logged as source text, re-executed
	// verbatim on recovery (create type/function/rule, activate,
	// deactivate). DDL is logged at execution time: like the in-memory
	// catalog it survives a surrounding transaction rollback.
	RecDDL RecordKind = 1
	// RecCommit is one committed transaction: its physical update
	// events split into user updates and check-phase action updates,
	// plus the objects it created/deleted and the interface variables
	// it bound. Replay applies the user events and commits — the check
	// phase re-derives and re-fires the actions — then reconciles the
	// logged action events so the final state is reached even when an
	// action's procedure is not registered at recovery time.
	RecCommit RecordKind = 2
	// RecIface is an interface-variable binding made outside any
	// transaction (the embedding API's SetVar).
	RecIface RecordKind = 3
)

// ObjectRec is one object birth in a commit record: recovery restores
// the exact OID so replayed events referencing it stay meaningful.
type ObjectRec struct {
	OID  types.OID
	Type string
}

// Bind is one interface-variable binding.
type Bind struct {
	Name  string
	Value types.Value
}

// Record is one write-ahead log record. Seq numbers are assigned by the
// session, strictly increasing across DDL and commit records; a
// snapshot stores the last seq it covers, so replay after a checkpoint
// skips records the snapshot already contains (which also makes the
// post-checkpoint log truncation safe to lose to a crash).
type Record struct {
	Seq  uint64
	Kind RecordKind

	// RecDDL
	Stmt string

	// RecCommit
	Events    []storage.Event // user updates (transaction body)
	ActEvents []storage.Event // check-phase rule-action updates
	ObjNews   []ObjectRec
	ObjDels   []types.OID
	Binds     []Bind // also the payload of RecIface (single element)
}

// Empty reports whether a commit record carries no changes at all (an
// empty transaction — not worth a log record).
func (r *Record) Empty() bool {
	return r.Kind == RecCommit &&
		len(r.Events) == 0 && len(r.ActEvents) == 0 &&
		len(r.ObjNews) == 0 && len(r.ObjDels) == 0 && len(r.Binds) == 0
}
