package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"partdiff/internal/faultinject"
	"partdiff/internal/obs"
	"partdiff/internal/storage"
	"partdiff/internal/types"
)

// testRecords covers every record kind and every value kind, including
// a non-integral and an integral float (the codec must be lossless
// where types.Value.Key normalizes).
func testRecords() []Record {
	return []Record{
		{Seq: 1, Kind: RecDDL, Stmt: "create type item;"},
		{Seq: 2, Kind: RecCommit,
			Events: []storage.Event{
				{Kind: storage.InsertEvent, Relation: "quantity", Tuple: types.Tuple{types.Obj(7), types.Int(42)}},
				{Kind: storage.DeleteEvent, Relation: "quantity", Tuple: types.Tuple{types.Obj(7), types.Float(2.5)}},
				{Kind: storage.InsertEvent, Relation: "price", Tuple: types.Tuple{types.Obj(7), types.Float(3)}},
			},
			ActEvents: []storage.Event{
				{Kind: storage.InsertEvent, Relation: "log", Tuple: types.Tuple{types.Str("refill"), types.Bool(true)}},
			},
			ObjNews: []ObjectRec{{OID: 7, Type: "item"}},
			ObjDels: []types.OID{3},
			Binds:   []Bind{{Name: "a", Value: types.Obj(7)}, {Name: "nil", Value: types.Value{}}},
		},
		{Seq: 3, Kind: RecIface, Binds: []Bind{{Name: "x", Value: types.Int(-9)}}},
		{Seq: 4, Kind: RecCommit, Events: []storage.Event{
			{Kind: storage.InsertEvent, Relation: "s", Tuple: types.Tuple{types.Str("")}},
		}},
	}
}

func TestRecordCodecRoundTrip(t *testing.T) {
	for _, want := range testRecords() {
		got, err := decodeRecord(want.marshal())
		if err != nil {
			t.Fatalf("decode seq %d: %v", want.Seq, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip seq %d:\n got %+v\nwant %+v", want.Seq, got, want)
		}
	}
}

func TestRecordCodecRejectsCorruption(t *testing.T) {
	rec := testRecords()[1]
	payload := rec.marshal()
	if _, err := decodeRecord(payload[:len(payload)-1]); err == nil {
		t.Error("truncated payload decoded without error")
	}
	if _, err := decodeRecord(append(payload, 0)); err == nil {
		t.Error("trailing byte decoded without error")
	}
	bad := append([]byte(nil), payload...)
	bad[1] = 99 // record kind
	if _, err := decodeRecord(bad); err == nil {
		t.Error("unknown record kind decoded without error")
	}
}

func openLog(t *testing.T, path string, policy SyncPolicy) (*Log, []Record) {
	t.Helper()
	l, recs, err := Open(path, policy, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return l, recs
}

func TestLogAppendReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, recs := openLog(t, path, SyncAlways)
	if len(recs) != 0 {
		t.Fatalf("fresh log returned %d records", len(recs))
	}
	want := testRecords()
	for i := range want {
		if err := l.Append(&want[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, got := openLog(t, path, SyncAlways)
	defer l2.Close()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("reopen:\n got %+v\nwant %+v", got, want)
	}
}

// TestLogTornTail is the acceptance criterion: a torn final record —
// cut short or bit-flipped — is detected via CRC framing, discarded,
// and the log is clean for appends afterwards.
func TestLogTornTail(t *testing.T) {
	recs := testRecords()
	lastFrame := frameHeaderLen + len(recs[len(recs)-1].marshal())
	for _, tc := range []struct {
		name   string
		mangle func([]byte) []byte
	}{
		{"partial payload", func(b []byte) []byte { return b[:len(b)-3] }},
		{"partial frame header", func(b []byte) []byte { return b[:len(b)-lastFrame+4] }},
		{"flipped payload byte", func(b []byte) []byte {
			b[len(b)-2] ^= 0x40
			return b
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "wal.log")
			l, _ := openLog(t, path, SyncAlways)
			want := testRecords()
			for i := range want {
				if err := l.Append(&want[i]); err != nil {
					t.Fatal(err)
				}
			}
			l.Close()
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mangle(data), 0o644); err != nil {
				t.Fatal(err)
			}
			met := NewMetrics(obs.NewRegistry())
			l2, got, err := Open(path, SyncAlways, nil, met)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want)-1 || !reflect.DeepEqual(got, want[:len(want)-1]) {
				t.Fatalf("want %d intact records, got %+v", len(want)-1, got)
			}
			if met.TornRecords.Value() != 1 {
				t.Errorf("TornRecords = %d, want 1", met.TornRecords.Value())
			}
			// The log is clean: a new append replaces the torn tail.
			last := want[len(want)-1]
			if err := l2.Append(&last); err != nil {
				t.Fatal(err)
			}
			l2.Close()
			l3, got3 := openLog(t, path, SyncAlways)
			l3.Close()
			if !reflect.DeepEqual(got3, want) {
				t.Errorf("after re-append:\n got %+v\nwant %+v", got3, want)
			}
		})
	}
}

func TestLogRejectsWrongMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	if err := os.WriteFile(path, []byte("NOTALOG0 extra"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path, SyncAlways, nil, nil); err == nil {
		t.Fatal("wrong magic accepted")
	}
}

func TestLogReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := openLog(t, path, SyncAlways)
	rec := testRecords()[0]
	if err := l.Append(&rec); err != nil {
		t.Fatal(err)
	}
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if got := l.Size(); got != int64(len(logMagic)) {
		t.Errorf("size after reset = %d", got)
	}
	// Appends continue after a reset and survive a reopen.
	rec2 := testRecords()[2]
	if err := l.Append(&rec2); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, got := openLog(t, path, SyncAlways)
	l2.Close()
	if len(got) != 1 || !reflect.DeepEqual(got[0], rec2) {
		t.Errorf("after reset+append: %+v", got)
	}
}

// TestFsyncFailurePoisons pins the fsyncgate rule: one failed fsync
// makes every later operation fail with the sticky error.
func TestFsyncFailurePoisons(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	inj := faultinject.New()
	l, _, err := Open(path, SyncAlways, inj, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	inj.Arm(faultinject.WalFsync, 0, faultinject.Error)
	rec := testRecords()[0]
	if err := l.Append(&rec); err == nil {
		t.Fatal("append with failing fsync succeeded")
	}
	if l.Err() == nil {
		t.Fatal("log not poisoned after fsync failure")
	}
	// The armed fault is one-shot and spent — only the sticky error
	// remains.
	if err := l.Append(&rec); err == nil {
		t.Error("poisoned log accepted an append")
	}
	if err := l.Reset(); err == nil {
		t.Error("poisoned log accepted a reset")
	}
}

// TestAppendFaultLeavesLogClean: an injected append error fires before
// the write, so the file stays byte-identical and is NOT poisoned.
func TestAppendFaultLeavesLogClean(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	inj := faultinject.New()
	l, _, err := Open(path, SyncAlways, inj, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	rec := testRecords()[0]
	if err := l.Append(&rec); err != nil {
		t.Fatal(err)
	}
	before := l.Size()
	inj.Arm(faultinject.WalAppend, 0, faultinject.Error)
	rec2 := testRecords()[2]
	if err := l.Append(&rec2); err == nil {
		t.Fatal("append with injected fault succeeded")
	}
	if l.Err() != nil {
		t.Fatalf("append fault poisoned the log: %v", l.Err())
	}
	if l.Size() != before {
		t.Errorf("size changed across failed append: %d -> %d", before, l.Size())
	}
	if err := l.Append(&rec2); err != nil {
		t.Fatalf("append after recovered fault: %v", err)
	}
}

// TestGroupCommitConcurrent drives concurrent committers through the
// group-commit batcher; every acknowledged append must be durable in
// the reopened log.
func TestGroupCommitConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := openLog(t, path, SyncGrouped)
	const n = 32
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := Record{Seq: uint64(i + 1), Kind: RecDDL, Stmt: "stmt"}
			errs[i] = l.Append(&rec)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, got := openLog(t, path, SyncGrouped)
	l2.Close()
	if len(got) != n {
		t.Fatalf("reopened log has %d records, want %d", len(got), n)
	}
}

func TestGroupCommitClosedLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := openLog(t, path, SyncGrouped)
	l.Close()
	rec := testRecords()[0]
	if err := l.Append(&rec); err == nil {
		t.Error("closed log accepted an append")
	}
}

func testState() *State {
	return &State{
		Seq:     12,
		DDL:     []string{"create type item;", "activate r();"},
		NextOID: 9,
		Objects: []ObjectRec{{OID: 7, Type: "item"}, {OID: 8, Type: "item"}},
		Iface:   []Bind{{Name: "a", Value: types.Obj(7)}},
		Tables: []Table{
			{Name: "quantity", Arity: 2, KeyCols: []int{0}, Tuples: []types.Tuple{
				{types.Obj(7), types.Int(10)}, {types.Obj(8), types.Float(1.5)},
			}},
			{Name: "type:item", Arity: 1, Tuples: []types.Tuple{{types.Obj(7)}, {types.Obj(8)}}},
		},
	}
}

func TestStateCodecRoundTrip(t *testing.T) {
	want := testState()
	got, err := UnmarshalState(MarshalState(want))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, want)
	}
	// Marshalling is deterministic — the property tests compare bytes.
	if !bytes.Equal(MarshalState(want), MarshalState(got)) {
		t.Error("MarshalState is not deterministic")
	}
}

func TestStateCodecRejectsCorruption(t *testing.T) {
	data := MarshalState(testState())
	flip := append([]byte(nil), data...)
	flip[len(flip)/2] ^= 0x10
	if _, err := UnmarshalState(flip); err == nil {
		t.Error("corrupt snapshot unmarshalled without error")
	}
	if _, err := UnmarshalState(data[:len(data)-2]); err == nil {
		t.Error("truncated snapshot unmarshalled without error")
	}
}

func TestSnapshotWriteReadPrune(t *testing.T) {
	dir := t.TempDir()
	if st, err := ReadLatestSnapshot(dir); err != nil || st != nil {
		t.Fatalf("empty dir: st=%v err=%v", st, err)
	}
	// Three generations; the newest wins and only snapKeep remain.
	for seq := uint64(1); seq <= 3; seq++ {
		st := testState()
		st.Seq = seq
		if err := WriteSnapshot(dir, st, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadLatestSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 3 {
		t.Errorf("latest snapshot seq = %d, want 3", got.Seq)
	}
	snaps := listSnapshots(dir)
	if len(snaps) != snapKeep {
		t.Errorf("%d snapshots retained, want %d: %v", len(snaps), snapKeep, snaps)
	}
}

// TestSnapshotCorruptNewestFallsBack: a snapshot failing its CRC is
// skipped in favor of the previous generation.
func TestSnapshotCorruptNewestFallsBack(t *testing.T) {
	dir := t.TempDir()
	for seq := uint64(1); seq <= 2; seq++ {
		st := testState()
		st.Seq = seq
		if err := WriteSnapshot(dir, st, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	newest := listSnapshots(dir)[0]
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLatestSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 1 {
		t.Errorf("fallback snapshot seq = %d, want 1", got.Seq)
	}
	// With every generation corrupt, the failure is reported rather
	// than silently starting empty.
	older := listSnapshots(dir)[1]
	if err := os.WriteFile(older, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadLatestSnapshot(dir); err == nil {
		t.Error("all-corrupt dir read as empty")
	}
}

func TestSnapshotCheckpointFault(t *testing.T) {
	dir := t.TempDir()
	inj := faultinject.New()
	inj.Arm(faultinject.WalCheckpoint, 0, faultinject.Error)
	err := WriteSnapshot(dir, testState(), inj, nil)
	if err == nil {
		t.Fatal("injected checkpoint fault ignored")
	}
	if !strings.Contains(err.Error(), "injected fault") {
		t.Fatalf("unexpected error: %v", err)
	}
	if got := listSnapshots(dir); len(got) != 0 {
		t.Errorf("failed checkpoint left files: %v", got)
	}
}
