package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"partdiff/internal/faultinject"
	"partdiff/internal/obs"
)

// logMagic is the log file header; the trailing digit is the format
// version. A file with a different magic is rejected, not guessed at.
const logMagic = "AMOSWAL1"

// frameHeaderLen is the per-record frame overhead: u32 payload length +
// u32 CRC32-C of the payload, both little-endian.
const frameHeaderLen = 8

// maxRecordLen bounds a single record payload; a larger length field is
// treated as a torn/corrupt tail rather than an allocation request.
const maxRecordLen = 1 << 30

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Log is an append-only write-ahead log on one file. Appends and syncs
// are safe for concurrent use (the group-commit batcher syncs from a
// background goroutine).
//
// Failure semantics follow the fsync rules of modern kernels: a failed
// write is cut back off the file and retried-able, but a failed fsync
// poisons the log (the page cache state is unknowable afterwards), and
// every later call returns the sticky error.
type Log struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	size   int64
	policy SyncPolicy
	inj    *faultinject.Injector
	met    *Metrics // never nil; zero-value Metrics when observability is off
	err    error    // sticky
	closed bool

	// bus, when active, receives a system/fsync_stall event for every
	// fsync slower than stall (SetBus; 0 keeps the default).
	bus   *obs.Bus
	stall time.Duration

	// rec is the flight recorder: fsync latency samples plus the
	// fsync_stall and wal_poisoned anomaly triggers. Nil-safe.
	rec *obs.Recorder

	// Group-commit state (SyncGrouped only): whether a leader's fsync is
	// in flight, and the round of committers gathered behind it. gmu is
	// ordered before mu and never held across an fsync.
	gmu      sync.Mutex
	inFlight bool
	round    *syncRound
}

// syncRound collects committers that arrived while an fsync was in
// flight (that fsync may not cover their records). The round's leader
// runs one fsync for all of them, then closes done.
type syncRound struct {
	done chan struct{}
	err  error
}

// Open opens (or creates) the log at path, scans every valid record and
// returns them for replay. A torn or corrupt tail — a partial frame, a
// CRC mismatch, or an undecodable payload — is detected, counted in
// met.TornRecords, and truncated off so the log is clean for appends;
// everything before it is returned intact. inj and met may be nil.
func Open(path string, policy SyncPolicy, inj *faultinject.Injector, met *Metrics) (*Log, []Record, error) {
	if met == nil {
		met = &Metrics{}
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: read %s: %w", path, err)
	}
	l := &Log{f: f, path: path, policy: policy, inj: inj, met: met}
	if len(data) == 0 {
		if _, err := f.Write([]byte(logMagic)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: write header: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: sync header: %w", err)
		}
		l.size = int64(len(logMagic))
	} else {
		if len(data) < len(logMagic) || string(data[:len(logMagic)]) != logMagic {
			f.Close()
			return nil, nil, fmt.Errorf("wal: %s is not a version-%q log", path, logMagic)
		}
		recs, goodEnd, torn := scanRecords(data)
		if torn {
			met.TornRecords.Inc()
		}
		if int64(goodEnd) < int64(len(data)) {
			if err := f.Truncate(int64(goodEnd)); err != nil {
				f.Close()
				return nil, nil, fmt.Errorf("wal: truncate torn tail: %w", err)
			}
			if _, err := f.Seek(int64(goodEnd), io.SeekStart); err != nil {
				f.Close()
				return nil, nil, err
			}
		}
		l.size = int64(goodEnd)
		l.met.LogBytes.Set(l.size)
		return l, recs, nil
	}
	l.met.LogBytes.Set(l.size)
	return l, nil, nil
}

// scanRecords walks the frames after the header. It returns the decoded
// records, the offset just past the last valid frame, and whether any
// trailing bytes were discarded.
func scanRecords(data []byte) (recs []Record, goodEnd int, torn bool) {
	off := len(logMagic)
	for {
		if off+frameHeaderLen > len(data) {
			return recs, off, off != len(data)
		}
		ln := binary.LittleEndian.Uint32(data[off:])
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if ln > maxRecordLen || off+frameHeaderLen+int(ln) > len(data) {
			return recs, off, true
		}
		payload := data[off+frameHeaderLen : off+frameHeaderLen+int(ln)]
		if crc32.Checksum(payload, castagnoli) != crc {
			return recs, off, true
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return recs, off, true
		}
		recs = append(recs, rec)
		off += frameHeaderLen + int(ln)
	}
}

// Policy returns the log's sync policy (fixed at Open).
func (l *Log) Policy() SyncPolicy { return l.policy }

// Size returns the current log size in bytes.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Err returns the sticky failure, nil while the log is healthy.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// DefaultFsyncStall is the latency above which an fsync publishes a
// system/fsync_stall event (a stalling disk shows up on the bus before
// it shows up as commit latency complaints).
const DefaultFsyncStall = 100 * time.Millisecond

// SetBus installs the event bus fsync stalls are reported on; stall
// overrides the detection threshold (<= 0 keeps DefaultFsyncStall).
func (l *Log) SetBus(b *obs.Bus, stall time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if stall <= 0 {
		stall = DefaultFsyncStall
	}
	l.bus = b
	l.stall = stall
}

// SetRecorder installs the flight recorder fsync latencies and the
// fsync_stall / wal_poisoned triggers feed (nil disables).
func (l *Log) SetRecorder(r *obs.Recorder) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.rec = r
}

// SetInjector installs a fault injector (nil disables injection).
func (l *Log) SetInjector(inj *faultinject.Injector) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inj = inj
}

// Append writes one record frame and applies the sync policy: under
// SyncAlways it returns only after an fsync covering the record; under
// SyncGrouped it returns after the background batcher's next fsync;
// under SyncNone it returns after the write. An error means the record
// is NOT durably committed and the caller must treat the transaction as
// failed.
func (l *Log) Append(r *Record) error {
	if err := l.write(r); err != nil {
		return err
	}
	switch l.policy {
	case SyncAlways:
		return l.Sync()
	case SyncGrouped:
		return l.groupSync()
	default:
		return nil
	}
}

// Write appends one record frame WITHOUT applying the sync policy.
// Callers split append from durability so a committer can write its
// record while holding the writer gate and wait for the group fsync
// after releasing it — later writers append behind it and share the
// same fsync. Pair with AwaitSync before acknowledging the commit.
func (l *Log) Write(r *Record) error { return l.write(r) }

// AwaitSync applies the sync policy to everything written so far: an
// immediate fsync under SyncAlways, the group-commit batcher's next
// fsync under SyncGrouped, a no-op under SyncNone. Returns when the
// records are durable (or the log is poisoned).
func (l *Log) AwaitSync() error {
	switch l.policy {
	case SyncAlways:
		return l.Sync()
	case SyncGrouped:
		return l.groupSync()
	default:
		return nil
	}
}

func (l *Log) write(r *Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if l.closed {
		return fmt.Errorf("wal: log closed")
	}
	// Fire before writing: an injected append fault leaves the file
	// byte-identical (an injected panic unlocks via the deferred Unlock).
	if err := l.inj.Fire(faultinject.WalAppend); err != nil {
		return fmt.Errorf("wal append: %w", err)
	}
	payload := r.marshal()
	frame := make([]byte, 0, frameHeaderLen+len(payload))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(payload, castagnoli))
	frame = append(frame, payload...)
	if _, err := l.f.Write(frame); err != nil {
		// A partial frame may be on disk; cut it back off so the log
		// stays clean. Only an unremovable partial frame poisons.
		if terr := l.f.Truncate(l.size); terr != nil {
			l.err = fmt.Errorf("wal: append failed (%v), truncate failed (%v): log poisoned", err, terr)
			l.rec.Trigger(obs.TrigWalPoisoned, l.err.Error())
			return l.err
		}
		if _, serr := l.f.Seek(l.size, io.SeekStart); serr != nil {
			l.err = fmt.Errorf("wal: append failed (%v), reseek failed (%v): log poisoned", err, serr)
			l.rec.Trigger(obs.TrigWalPoisoned, l.err.Error())
			return l.err
		}
		return fmt.Errorf("wal append: %w", err)
	}
	l.size += int64(len(frame))
	l.met.Appends.Inc()
	l.met.Bytes.Add(int64(len(frame)))
	l.met.LogBytes.Set(l.size)
	return nil
}

// Sync fsyncs the log. A failed (or injected-failed) fsync poisons the
// log: after fsync returns an error the page cache state is unknowable,
// so no later success can be trusted (the "fsyncgate" rule). An
// injected panic also poisons before propagating to the commit path's
// containment.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.err != nil {
		return l.err
	}
	if l.closed {
		// Not sticky: a straggling group-commit waiter after Close gets
		// an error without poisoning the (cleanly closed) log.
		return fmt.Errorf("wal: log closed")
	}
	defer func() {
		if r := recover(); r != nil {
			l.err = fmt.Errorf("wal fsync panicked: %v", r)
			panic(r)
		}
	}()
	if err := l.inj.Fire(faultinject.WalFsync); err != nil {
		l.err = fmt.Errorf("wal fsync: %w", err)
		l.rec.Trigger(obs.TrigWalPoisoned, l.err.Error())
		return l.err
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		l.err = fmt.Errorf("wal fsync: %w", err)
		l.rec.Trigger(obs.TrigWalPoisoned, l.err.Error())
		return l.err
	}
	dur := time.Since(start)
	l.met.Fsyncs.Inc()
	l.met.FsyncSeconds.Observe(dur.Seconds())
	l.rec.RecordFsync("fsync", dur)
	if l.stall > 0 && dur > l.stall {
		detail := fmt.Sprintf("wal fsync took %s (threshold %s)", dur, l.stall)
		if l.bus.Active() {
			l.bus.Publish(obs.Event{
				Type: obs.EventSystem, Op: "fsync_stall",
				Ms:     float64(dur) / float64(time.Millisecond),
				Detail: detail,
			})
		}
		l.rec.Trigger(obs.TrigFsyncStall, detail)
	}
	return nil
}

// Reset truncates the log back to its header — called after a snapshot
// has been durably written, so every logged record is covered by it.
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if err := l.f.Truncate(int64(len(logMagic))); err != nil {
		l.err = fmt.Errorf("wal: reset: %w", err)
		return l.err
	}
	if _, err := l.f.Seek(int64(len(logMagic)), io.SeekStart); err != nil {
		l.err = fmt.Errorf("wal: reset seek: %w", err)
		return l.err
	}
	l.size = int64(len(logMagic))
	l.met.LogBytes.Set(l.size)
	return l.syncLocked()
}

func (l *Log) syncContained() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("wal fsync panicked: %v", r)
		}
	}()
	return l.Sync()
}

// groupSync implements leader-based group commit. The first committer
// to arrive leads: it fsyncs inline, so a solo committer pays exactly
// what SyncAlways pays — no handoff to a background goroutine.
// Committers arriving while that fsync is in flight CANNOT be covered
// by it (their append may have raced past its start), so they gather
// into a round; when the leader's own fsync finishes it runs ONE more
// fsync covering the whole round and wakes every member. An injected
// fsync panic is contained into the error each waiter receives (the
// log is already poisoned by syncLocked).
func (l *Log) groupSync() error {
	l.gmu.Lock()
	if l.inFlight {
		if l.round == nil {
			l.round = &syncRound{done: make(chan struct{})}
		}
		r := l.round
		l.gmu.Unlock()
		<-r.done
		return r.err
	}
	l.inFlight = true
	l.gmu.Unlock()
	err := l.syncContained()
	l.gmu.Lock()
	for l.round != nil {
		r := l.round
		l.round = nil
		l.gmu.Unlock()
		r.err = l.syncContained()
		close(r.done)
		l.gmu.Lock()
	}
	l.inFlight = false
	l.gmu.Unlock()
	return err
}

// Close fsyncs once more (best effort on a healthy log) and closes the
// file. Outstanding group-commit rounds drain through the sticky error.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	var syncErr error
	if l.err == nil {
		syncErr = l.f.Sync()
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	return syncErr
}
