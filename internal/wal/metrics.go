package wal

import "partdiff/internal/obs"

// Metrics is the durability subsystem's meter set. The zero value is a
// valid disabled meter set (nil meters are no-ops).
type Metrics struct {
	// Appends counts record frames written; Bytes the frame bytes.
	Appends *obs.Counter
	Bytes   *obs.Counter
	// Fsyncs counts log fsyncs; FsyncSeconds times each one — the
	// dominant term of commit latency under SyncAlways.
	Fsyncs       *obs.Counter
	FsyncSeconds *obs.Histogram
	// Checkpoints counts snapshots written; CheckpointSeconds times the
	// whole write-fsync-rename sequence.
	Checkpoints       *obs.Counter
	CheckpointSeconds *obs.Histogram
	// LogBytes / SnapshotBytes gauge the current on-disk sizes.
	LogBytes      *obs.Gauge
	SnapshotBytes *obs.Gauge
	// RecoveredRecords counts log records replayed at open;
	// TornRecords counts discarded torn/corrupt log tails.
	RecoveredRecords *obs.Counter
	TornRecords      *obs.Counter
	// CkptBusyRetries counts background-checkpoint attempts that found
	// the session busy and retried with backoff; CkptSkippedTicks counts
	// ticks abandoned after the retry budget (or inside a transaction).
	CkptBusyRetries  *obs.Counter
	CkptSkippedTicks *obs.Counter
}

// NewMetrics registers the durability meters in r.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Appends:           r.Counter("partdiff_wal_appends_total", "Write-ahead log records appended."),
		Bytes:             r.Counter("partdiff_wal_bytes_total", "Write-ahead log bytes written (frames incl. headers)."),
		Fsyncs:            r.Counter("partdiff_wal_fsyncs_total", "Write-ahead log fsyncs."),
		FsyncSeconds:      r.Histogram("partdiff_wal_fsync_seconds", "Wall-clock time of one log fsync.", obs.DefLatencyBuckets),
		Checkpoints:       r.Counter("partdiff_wal_checkpoints_total", "Snapshots (checkpoints) written."),
		CheckpointSeconds: r.Histogram("partdiff_wal_checkpoint_seconds", "Wall-clock time of one checkpoint (marshal, write, fsync, rename).", obs.DefLatencyBuckets),
		LogBytes:          r.Gauge("partdiff_wal_log_bytes", "Current write-ahead log size in bytes."),
		SnapshotBytes:     r.Gauge("partdiff_wal_snapshot_bytes", "Size in bytes of the last snapshot written."),
		RecoveredRecords:  r.Counter("partdiff_wal_recovered_records_total", "Log records replayed during recovery."),
		TornRecords:       r.Counter("partdiff_wal_torn_records_total", "Torn or corrupt log tails discarded at open."),
		CkptBusyRetries:   r.Counter("partdiff_wal_ckpt_busy_retries_total", "Background checkpoint attempts retried because the session was busy."),
		CkptSkippedTicks:  r.Counter("partdiff_wal_ckpt_skipped_ticks_total", "Background checkpoint ticks abandoned (retry budget exhausted or transaction active)."),
	}
}
