package faultinject

import (
	"errors"
	"testing"
)

func TestNilInjectorIsNoOp(t *testing.T) {
	var inj *Injector
	if err := inj.Fire(StoreInsert); err != nil {
		t.Fatalf("nil injector fired: %v", err)
	}
	if inj.Ops() != 0 || inj.Hits(StoreInsert) != 0 {
		t.Fatal("nil injector counted")
	}
	inj.Reset() // must not panic
}

func TestArmAtNthHit(t *testing.T) {
	inj := New()
	inj.Arm(StoreInsert, 2, Error)
	if err := inj.Fire(StoreInsert); err != nil {
		t.Fatalf("hit 0 fired: %v", err)
	}
	if err := inj.Fire(StoreDelete); err != nil {
		t.Fatalf("other point fired: %v", err)
	}
	if err := inj.Fire(StoreInsert); err != nil {
		t.Fatalf("hit 1 fired: %v", err)
	}
	if err := inj.Fire(StoreInsert); err == nil {
		t.Fatal("hit 2 did not fire")
	}
	// One-shot: does not re-fire.
	if err := inj.Fire(StoreInsert); err != nil {
		t.Fatalf("one-shot fault re-fired: %v", err)
	}
	if got := inj.Hits(StoreInsert); got != 4 {
		t.Fatalf("Hits = %d, want 4", got)
	}
}

func TestArmIndexCountsGlobally(t *testing.T) {
	inj := New()
	inj.Fire(StoreInsert) // op 0 before arming: ArmIndex is relative to now
	inj.ArmIndex(1, Error)
	if err := inj.Fire(RuleAction); err != nil {
		t.Fatalf("op +0 fired: %v", err)
	}
	if err := inj.Fire(Differential); err == nil {
		t.Fatal("op +1 did not fire")
	}
	if err := inj.Fire(Differential); err != nil {
		t.Fatalf("one-shot re-fired: %v", err)
	}
}

func TestPanicKind(t *testing.T) {
	inj := New()
	inj.Arm(RuleAction, 0, Panic)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic")
		}
		var p *InjectedPanic
		if !errors.As(r.(error), &p) || p.Point != RuleAction {
			t.Fatalf("recovered %v, want *InjectedPanic at %s", r, RuleAction)
		}
	}()
	inj.Fire(RuleAction)
}

func TestReset(t *testing.T) {
	inj := New()
	inj.Arm(StoreInsert, 0, Error)
	inj.Fire(StoreDelete)
	inj.Reset()
	if err := inj.Fire(StoreInsert); err != nil {
		t.Fatalf("armed fault survived Reset: %v", err)
	}
	if inj.Ops() != 1 {
		t.Fatalf("Ops = %d after Reset+1 fire, want 1", inj.Ops())
	}
}
