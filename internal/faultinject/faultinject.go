// Package faultinject provides deterministic fault injection for
// crash-safety testing of the monitor stack. An Injector is threaded
// through the storage, propagation, rule and transaction layers; each
// layer calls Fire at its fault points. When no injector is installed
// (the nil *Injector), Fire is a nil-check and nothing else, so
// production paths pay essentially nothing.
//
// Faults are armed deterministically: either "the Nth hit of point P"
// or "the Nth Fire call overall" (the global operation index), and they
// either return an error or panic. A one-shot armed fault fires exactly
// once, so an injected failure during the forward phase of a
// transaction does not re-fire while the rollback replays the undo log
// — which is exactly what the fault-sweep fuzz test needs to assert
// that rollback restores the pre-transaction snapshot.
package faultinject

import (
	"fmt"
	"sort"
	"sync"
)

// Point names one fault site.
type Point string

// The fault points instrumented across the stack.
const (
	// StoreInsert fires before a tuple is inserted into a relation.
	StoreInsert Point = "store.insert"
	// StoreDelete fires before a tuple is removed from a relation.
	StoreDelete Point = "store.delete"
	// PropagateNode fires before a changed node's outgoing edges are
	// processed during propagation.
	PropagateNode Point = "propnet.node"
	// Differential fires before one partial differential is executed.
	Differential Point = "propnet.differential"
	// RuleAction fires before one rule-action instance is dispatched.
	RuleAction Point = "rules.action"
	// WalAppend fires before a record frame is written to the write-ahead
	// log (nothing has reached the file yet when it fires).
	WalAppend Point = "wal.append"
	// WalFsync fires before the write-ahead log is fsynced; a fault here
	// models the record being in the file but its durability unknown.
	WalFsync Point = "wal.fsync"
	// WalCheckpoint fires before a snapshot (checkpoint) is written.
	WalCheckpoint Point = "wal.checkpoint"
)

// Kind selects how an armed fault manifests.
type Kind int

// The fault kinds.
const (
	// Error makes Fire return an injected error.
	Error Kind = iota
	// Panic makes Fire panic with a *Panic value.
	Panic
)

// InjectedPanic is the value an armed Panic fault panics with, so
// recover sites can distinguish injected panics in tests.
type InjectedPanic struct {
	Point Point
	Index int
}

// Error implements error so a recovered *InjectedPanic reads well in
// messages.
func (p *InjectedPanic) Error() string {
	return fmt.Sprintf("injected panic at %s (op %d)", p.Point, p.Index)
}

type fault struct {
	kind Kind
	// at is the absolute hit number (of the point, or of the global op
	// counter) the fault fires on.
	at    int
	fired bool
}

// Injector holds armed faults and hit counters. The zero value and the
// nil pointer are both valid, disabled injectors. All methods are safe
// for concurrent use.
type Injector struct {
	mu sync.Mutex
	// ops is the global Fire count since New or Reset.
	ops int
	// hits counts Fire calls per point.
	hits map[Point]int
	// byPoint faults trigger on the Nth hit of their point; byIndex
	// faults trigger on the Nth Fire call overall.
	byPoint map[Point][]*fault
	byIndex map[int]*fault
}

// New returns an empty, disarmed injector.
func New() *Injector {
	return &Injector{
		hits:    map[Point]int{},
		byPoint: map[Point][]*fault{},
		byIndex: map[int]*fault{},
	}
}

// Arm schedules a one-shot fault at the nth upcoming hit of point p
// (n=0 means the very next hit).
func (i *Injector) Arm(p Point, n int, kind Kind) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.byPoint[p] = append(i.byPoint[p], &fault{kind: kind, at: i.hits[p] + n})
}

// ArmIndex schedules a one-shot fault at the nth upcoming Fire call
// overall, regardless of point (n=0 means the very next call). This is
// the sweep primitive: count a clean run's operations, then re-run the
// same script once per index.
func (i *Injector) ArmIndex(n int, kind Kind) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.byIndex[i.ops+n] = &fault{kind: kind}
}

// Fire reports an armed fault at point p: it returns an injected error,
// panics with a *InjectedPanic, or returns nil. On a nil or disarmed injector
// it only bumps counters (nil: nothing at all).
func (i *Injector) Fire(p Point) error {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	op := i.ops
	ph := i.hits[p]
	i.ops++
	i.hits[p]++
	var hit *fault
	if f, ok := i.byIndex[op]; ok && !f.fired {
		hit = f
	}
	if hit == nil {
		for _, f := range i.byPoint[p] {
			if !f.fired && f.at == ph {
				hit = f
				break
			}
		}
	}
	if hit != nil {
		hit.fired = true
	}
	i.mu.Unlock()
	if hit == nil {
		return nil
	}
	if hit.kind == Panic {
		panic(&InjectedPanic{Point: p, Index: op})
	}
	return fmt.Errorf("injected fault at %s (op %d)", p, op)
}

// Ops returns the total number of Fire calls since New or Reset.
func (i *Injector) Ops() int {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.ops
}

// Hits returns the number of Fire calls at point p.
func (i *Injector) Hits(p Point) int {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.hits[p]
}

// Points returns the points hit so far, sorted.
func (i *Injector) Points() []Point {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make([]Point, 0, len(i.hits))
	for p := range i.hits {
		out = append(out, p)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Reset disarms all faults and zeroes all counters.
func (i *Injector) Reset() {
	if i == nil {
		return
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.ops = 0
	i.hits = map[Point]int{}
	i.byPoint = map[Point][]*fault{}
	i.byIndex = map[int]*fault{}
}
