package maint

import (
	"fmt"
	"io"
	"sort"

	"partdiff/internal/obs"
)

// Choose picks the propagation strategy for one view at the start of a
// wave. seedTotal is the total Δ size feeding the view's differentials
// this wave; extentEst is the evaluator's current estimate of the
// view's extent cardinality (cold-start proxy for recomputation cost).
//
// The costs compared are predicted tuples scanned: incremental ≈
// seedTotal × incrPerSeed (EWMA, default 16 cold), recompute ≈
// recompScan (EWMA) or extentEst × 4 cold. The first decision for a
// view is taken directly; after that a flip requires the alternative
// to win by HysteresisFactor for HysteresisRuns consecutive waves.
//
// With Hybrid disabled this always returns Incremental and records
// nothing.
func (m *Maintainer) Choose(view string, seedTotal, extentEst int) Strategy {
	if m == nil || !m.cfg.Hybrid {
		return Incremental
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	vs, ok := m.views[view]
	if !ok {
		vs = &viewState{name: view}
		m.views[view] = vs
	}

	incrCost := float64(seedTotal) * defaultIncrPerSeed
	if vs.incrSeen {
		incrCost = float64(seedTotal) * vs.incrPerSeed
	}
	recompCost := float64(extentEst) * recompFactor
	if vs.recompSeen {
		recompCost = vs.recompScan
	}

	want := vs.cur
	switch {
	case recompCost*m.cfg.HysteresisFactor < incrCost:
		want = Recompute
	case incrCost*m.cfg.HysteresisFactor < recompCost:
		want = Incremental
	}

	switched := false
	switch {
	case !vs.decided:
		// The first decision is taken directly — but every view starts
		// on the Incremental default (the strategy it uses with hybrid
		// off), so landing anywhere else is a real strategy change and
		// is journaled and metered as a switch.
		vs.decided = true
		vs.cur = want
		vs.pendingRuns = 0
		switched = want != Incremental
	case want == vs.cur:
		vs.pendingRuns = 0
	default:
		if vs.pending != want {
			vs.pending = want
			vs.pendingRuns = 0
		}
		vs.pendingRuns++
		if vs.pendingRuns >= m.cfg.HysteresisRuns {
			vs.cur = want
			vs.pendingRuns = 0
			switched = true
		}
	}

	m.decSeq++
	d := Decision{
		Seq: m.decSeq, View: view, Strategy: vs.cur, Switched: switched,
		SeedTotal: seedTotal, IncrCost: incrCost, RecompCost: recompCost,
	}
	m.decisions = append(m.decisions, d)
	if len(m.decisions) > decisionRing {
		m.decisions = m.decisions[len(m.decisions)-decisionRing:]
	}
	m.met.Decisions.With(vs.cur.String()).Inc()
	if switched {
		m.switches++
		m.met.Switches.Inc()
		detail := fmt.Sprintf("%s: %s (incr≈%.0f recomp≈%.0f scanned, seed=%d)",
			view, vs.cur, incrCost, recompCost, seedTotal)
		if m.bus != nil {
			m.bus.Publish(obs.Event{
				Type:   obs.EventSystem,
				Op:     "strategy_switch",
				Detail: detail,
			})
		}
		m.rec.RecordChoice(view, vs.cur.String(), detail)
	}
	return vs.cur
}

// ObserveIncremental feeds the chooser one incremental wave's observed
// cost: scanned tuples over seedTotal seed tuples for the view.
func (m *Maintainer) ObserveIncremental(view string, seedTotal, scanned int) {
	if m == nil || seedTotal <= 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	vs, ok := m.views[view]
	if !ok {
		return
	}
	vs.incrPerSeed = ewma(vs.incrPerSeed, float64(scanned)/float64(seedTotal), vs.incrSeen)
	vs.incrSeen = true
}

// ObserveRecompute feeds the chooser one full recomputation's observed
// scan cost for the view.
func (m *Maintainer) ObserveRecompute(view string, scanned int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	vs, ok := m.views[view]
	if !ok {
		return
	}
	vs.recompScan = ewma(vs.recompScan, float64(scanned), vs.recompSeen)
	vs.recompSeen = true
}

// Switches returns the number of strategy switches since creation.
func (m *Maintainer) Switches() uint64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.switches
}

// Decisions returns a copy of the recent-decision journal, oldest
// first.
func (m *Maintainer) Decisions() []Decision {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Decision, len(m.decisions))
	copy(out, m.decisions)
	return out
}

// StrategyLabel names the view's maintenance strategy for the profiler
// report's strategy column: "count" (counting incremental), "incr"
// (plain incremental), "recomp" (chooser currently prefers
// recomputation), or "" for views the maintainer doesn't know.
func (m *Maintainer) StrategyLabel(view string) string {
	if m == nil {
		return ""
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	vs, ok := m.views[view]
	if !ok {
		return ""
	}
	if vs.decided && vs.cur == Recompute {
		return "recomp"
	}
	if m.cfg.Counting && vs.seeded && !vs.dirty {
		return "count"
	}
	if m.cfg.Counting {
		return "count*" // counting view pending (re)seed
	}
	return "incr"
}

// WriteReport renders the chooser state and decision journal — the
// shell's \hybrid report.
func (m *Maintainer) WriteReport(w io.Writer) error {
	if m == nil {
		_, err := fmt.Fprintln(w, "hybrid maintenance: not enabled")
		return err
	}
	m.mu.Lock()
	views := make([]*viewState, 0, len(m.views))
	for _, vs := range m.views {
		views = append(views, vs)
	}
	sort.Slice(views, func(i, j int) bool { return views[i].name < views[j].name })
	type row struct {
		name, strat             string
		counted                 int
		seeded, dirty           bool
		incrPerSeed, recompScan float64
		incrSeen, recompSeen    bool
	}
	rows := make([]row, 0, len(views))
	for _, vs := range views {
		strat := Incremental
		if vs.decided {
			strat = vs.cur
		}
		rows = append(rows, row{
			name: vs.name, strat: strat.String(), counted: len(vs.counts),
			seeded: vs.seeded, dirty: vs.dirty,
			incrPerSeed: vs.incrPerSeed, recompScan: vs.recompScan,
			incrSeen: vs.incrSeen, recompSeen: vs.recompSeen,
		})
	}
	decs := make([]Decision, len(m.decisions))
	copy(decs, m.decisions)
	switches := m.switches
	counting, hybrid := m.cfg.Counting, m.cfg.Hybrid
	m.mu.Unlock()

	if _, err := fmt.Fprintf(w, "maintenance: counting=%v hybrid=%v switches=%d\n",
		counting, hybrid, switches); err != nil {
		return err
	}
	if len(rows) == 0 {
		_, err := fmt.Fprintln(w, "  (no maintained views)")
		return err
	}
	fmt.Fprintf(w, "  %-28s %-8s %9s %8s %14s %14s\n",
		"view", "strategy", "counted", "state", "incr/seed", "recomp scan")
	for _, r := range rows {
		state := "seeded"
		switch {
		case !r.seeded:
			state = "unseeded"
		case r.dirty:
			state = "dirty"
		}
		ips, rs := "-", "-"
		if r.incrSeen {
			ips = fmt.Sprintf("%.1f", r.incrPerSeed)
		}
		if r.recompSeen {
			rs = fmt.Sprintf("%.0f", r.recompScan)
		}
		fmt.Fprintf(w, "  %-28s %-8s %9d %8s %14s %14s\n",
			r.name, r.strat, r.counted, state, ips, rs)
	}
	if len(decs) > 0 {
		fmt.Fprintf(w, "  recent decisions (last %d):\n", len(decs))
		for _, d := range decs {
			mark := " "
			if d.Switched {
				mark = "*"
			}
			fmt.Fprintf(w, "  %s #%-5d %-28s %-7s seed=%-6d incr≈%-9.0f recomp≈%-9.0f\n",
				mark, d.Seq, d.View, d.Strategy, d.SeedTotal, d.IncrCost, d.RecompCost)
		}
	}
	return nil
}
