// Package maint is the dynamic maintenance subsystem: the runtime
// counterpart of the static differential pruning in internal/analyze.
// It bundles two cooperating pieces the propagation network consults
// during every wave:
//
//   - Counting maintenance: a per-derived-tuple derivation-count
//     sidecar (a compact multiset keyed by types.Tuple.Key, like the
//     MVCC version sidecar in internal/storage). The network executes
//     triangle-form differentials (diff.GenerateCounting) under bag
//     semantics and folds the signed per-derivation deltas through the
//     count store; only 0↔positive support transitions surface as node
//     Δ-changes. A deletion that removes one of several derivations
//     decrements support and emits nothing — no recomputation of the
//     defining condition and no §7.2 membership probe are needed,
//     because the maintained counts make the node's Δ exact by
//     construction.
//
//   - A cost-based strategy chooser (the paper's §8 Hybrid mode made
//     real): per view and per propagation wave it decides between
//     incremental partial-differencing propagation and naive full
//     recomputation of the view (old vs new state diff), from observed
//     per-view cost EWMAs (tuples scanned per seed tuple incrementally,
//     tuples scanned per recomputation) seeded by the adaptive-stats
//     extent estimate, with hysteresis so the choice doesn't flap.
//
// Counts are transactional: every mutation is journaled (first touch
// per transaction) and rolled back exactly on abort. Crash recovery
// needs no count persistence at all — the invariant "counts equal the
// bag evaluation of the current state" makes a lazy reseed after
// recovery (or after any strategy switch that left them stale) produce
// exactly the counts an uninterrupted history would have.
package maint

import (
	"fmt"
	"sync"

	"partdiff/internal/delta"
	"partdiff/internal/obs"
	"partdiff/internal/types"
)

// Strategy is the per-view, per-wave propagation choice.
type Strategy uint8

// The strategies.
const (
	// Incremental propagates partial differentials (with counting when
	// enabled) — the paper's scheme.
	Incremental Strategy = iota
	// Recompute derives the view's Δ by evaluating it in the old and
	// new states and diffing — the naive method, which wins for tiny
	// extents under massive updates.
	Recompute
)

// String names the strategy as shown in reports.
func (s Strategy) String() string {
	if s == Recompute {
		return "recomp"
	}
	return "incr"
}

// Config controls the maintainer.
type Config struct {
	// Counting enables derivation-count maintenance for differenced
	// views.
	Counting bool
	// Hybrid enables the cost-based per-wave strategy chooser; off, every
	// differenced view always propagates incrementally.
	Hybrid bool
	// HysteresisRuns is how many consecutive waves must favor the
	// alternative strategy before the chooser flips (default 2; the
	// first decision for a view is taken cold, without hysteresis).
	HysteresisRuns int
	// HysteresisFactor is the cost advantage the alternative must show,
	// as a multiplier, to count as favoring a flip (default 2).
	HysteresisFactor float64
}

// DefaultConfig enables counting and hybrid with default hysteresis.
func DefaultConfig() Config {
	return Config{Counting: true, Hybrid: true, HysteresisRuns: 2, HysteresisFactor: 2}
}

// BagDelta is one tuple's signed derivation-count change accumulated
// over a wave's triangle-differential executions.
type BagDelta struct {
	Tuple types.Tuple
	N     int64
}

// centry is one counted tuple: the tuple and its derivation count.
type centry struct {
	tuple types.Tuple
	n     int64
}

// viewState is the maintainer's per-view record: the count store and
// the chooser's cost memory. Chooser state survives count reseeds and
// network rebuilds (it is workload history, not derived data).
type viewState struct {
	name  string
	canon string // canonical definition fingerprint at registration

	counts map[string]centry
	seeded bool // counts reflect some consistent state
	dirty  bool // counts are stale (a recompute wave bypassed them)

	// Chooser state.
	decided     bool
	cur         Strategy
	pending     Strategy
	pendingRuns int

	// Cost EWMAs (α as in eval.Stats): tuples scanned per seed tuple on
	// incremental waves, tuples scanned per full recomputation.
	incrPerSeed float64
	incrSeen    bool
	recompScan  float64
	recompSeen  bool
}

// ewmaAlpha matches eval.Stats: recent waves dominate without one
// anomalous wave wiping the history.
const ewmaAlpha = 0.3

func ewma(old, observed float64, seen bool) float64 {
	if !seen {
		return observed
	}
	return old + ewmaAlpha*(observed-old)
}

// Cold-start cost constants: with no observations yet, an incremental
// wave is assumed to scan defaultIncrPerSeed tuples per seed tuple and
// a recomputation recompFactor tuples per estimated extent tuple.
const (
	defaultIncrPerSeed = 16
	recompFactor       = 4
)

// undoKind discriminates journal entries.
type undoKind uint8

const (
	undoCount undoKind = iota // one tuple's count (first touch per txn)
	undoState                 // whole count store (reseed / registration)
	undoDirty                 // the dirty flag alone (MarkDirty)
)

// undoEntry restores one piece of maintainer state on rollback. Entries
// are replayed in reverse journal order.
type undoEntry struct {
	kind undoKind
	vs   *viewState

	key     string // undoCount
	old     centry
	present bool

	oldCounts map[string]centry // undoState
	oldSeeded bool
	oldDirty  bool
}

// Decision is one journaled chooser decision.
type Decision struct {
	Seq        uint64
	View       string
	Strategy   Strategy
	Switched   bool
	SeedTotal  int
	IncrCost   float64
	RecompCost float64
}

// decisionRing bounds the decision journal.
const decisionRing = 128

// Maintainer owns the count stores and the strategy chooser for one
// rules manager. It outlives propagation-network rebuilds (the manager
// passes the same maintainer to every rebuilt network), so counts and
// cost history survive definition changes that don't touch a view.
//
// All methods are nil-safe where the propagation hot path calls them,
// and internally locked: invariant checks and reports may run from a
// monitoring goroutine while a check phase is propagating.
type Maintainer struct {
	cfg Config
	met *Metrics
	bus *obs.Bus
	rec *obs.Recorder

	mu    sync.Mutex
	views map[string]*viewState

	// undo is the transaction journal; touched/stateTouched implement
	// first-touch-per-transaction semantics.
	undo         []undoEntry
	touched      map[*viewState]map[string]bool
	stateTouched map[*viewState]bool

	decSeq    uint64
	decisions []Decision // ring, most recent last
	switches  uint64
}

// New returns a maintainer with the given configuration (zero
// hysteresis fields are defaulted).
func New(cfg Config) *Maintainer {
	if cfg.HysteresisRuns <= 0 {
		cfg.HysteresisRuns = 2
	}
	if cfg.HysteresisFactor <= 1 {
		cfg.HysteresisFactor = 2
	}
	return &Maintainer{
		cfg:   cfg,
		met:   &Metrics{},
		views: map[string]*viewState{},
	}
}

// Counting reports whether derivation-count maintenance is enabled.
func (m *Maintainer) Counting() bool { return m != nil && m.cfg.Counting }

// Hybrid reports whether the cost-based strategy chooser is enabled.
func (m *Maintainer) Hybrid() bool { return m != nil && m.cfg.Hybrid }

// SetCounting toggles derivation-count maintenance. Turning it on
// invalidates every view's counts (journaled): while it was off the
// network propagated without maintaining them, so whatever they say is
// stale — each view reseeds lazily on its next counted wave.
func (m *Maintainer) SetCounting(on bool) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cfg.Counting == on {
		return
	}
	m.cfg.Counting = on
	if on {
		for _, vs := range m.views {
			if vs.seeded {
				m.recordStateUndo(vs)
				vs.seeded = false
			}
		}
	}
}

// SetHybrid toggles the cost-based strategy chooser. Turning it off
// resets every view's decision back to incremental (the only strategy
// the scheduler will use); cost EWMAs are kept, so a later re-enable
// starts warm.
func (m *Maintainer) SetHybrid(on bool) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cfg.Hybrid == on {
		return
	}
	m.cfg.Hybrid = on
	if !on {
		for _, vs := range m.views {
			vs.decided = false
			vs.cur = Incremental
			vs.pendingRuns = 0
		}
	}
}

// SetMetrics installs the registry-backed meter set (nil restores the
// disabled default).
func (m *Maintainer) SetMetrics(met *Metrics) {
	if met == nil {
		met = &Metrics{}
	}
	m.met = met
}

// SetBus installs the event bus strategy-switch system events are
// published on (nil disables).
func (m *Maintainer) SetBus(b *obs.Bus) { m.bus = b }

// SetRecorder installs the flight recorder strategy switches are
// recorded on (nil disables).
func (m *Maintainer) SetRecorder(r *obs.Recorder) { m.rec = r }

// Register (re)declares a counted view. When the canonical definition
// matches the registration the counts were built under, they are kept;
// a changed definition drops them (journaled — a mid-transaction
// redefinition that rolls back gets its counts back), so the next wave
// reseeds against the new definition. Chooser state is always kept.
func (m *Maintainer) Register(view, canon string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	vs, ok := m.views[view]
	if !ok {
		m.views[view] = &viewState{name: view, canon: canon}
		return
	}
	if vs.canon == canon {
		return
	}
	m.recordStateUndo(vs)
	vs.canon = canon
	vs.counts = nil
	vs.seeded = false
	vs.dirty = false
}

// NeedsReseed reports whether the view's counts must be rebuilt before
// the next Apply (never seeded, dropped at registration, or marked
// stale by a recompute wave).
func (m *Maintainer) NeedsReseed(view string) bool {
	if m == nil {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	vs, ok := m.views[view]
	return ok && (!vs.seeded || vs.dirty)
}

// Reseed rebuilds the view's counts from scratch: enumerate must yield
// the view's bag extent (one emit per derivation) in the state the
// counts should reflect — the propagation network passes the OLD state
// of the current change window, so applying the window's deltas on top
// lands on the new state. The replaced store is journaled whole (one
// pointer swap), so an abort restores the previous counts and flags.
func (m *Maintainer) Reseed(view string, enumerate func(emit func(types.Tuple) error) error) error {
	if m == nil {
		return fmt.Errorf("maint: no maintainer")
	}
	counts := map[string]centry{}
	if err := enumerate(func(t types.Tuple) error {
		k := t.Key()
		e := counts[k]
		counts[k] = centry{tuple: t, n: e.n + 1}
		return nil
	}); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	vs, ok := m.views[view]
	if !ok {
		return fmt.Errorf("maint: view %q not registered", view)
	}
	m.recordStateUndo(vs)
	vs.counts = counts
	vs.seeded = true
	vs.dirty = false
	m.met.Reseeds.Inc()
	m.met.CountedTuples.Set(m.countedTuplesLocked())
	return nil
}

// MarkDirty flags the view's counts as stale — a recompute wave derived
// the node's Δ without going through them. Cheap and journaled; the
// counts themselves are kept in case the transaction aborts.
func (m *Maintainer) MarkDirty(view string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	vs, ok := m.views[view]
	if !ok || vs.dirty || !vs.seeded {
		return
	}
	if !m.stateTouched[vs] {
		m.undo = append(m.undo, undoEntry{kind: undoDirty, vs: vs, oldDirty: vs.dirty})
		m.markStateTouched(vs)
	}
	vs.dirty = true
}

// Apply folds one wave's signed derivation-count deltas into the
// view's count store and returns the exact node Δ: a tuple whose
// support crossed 0→positive is a net insertion, positive→0 a net
// deletion, every other change is support-only and emits nothing. A
// support underflow means the triangle differentials and the store
// disagree — a bug, surfaced as an error so the transaction rolls back
// rather than silently corrupting the monitor.
func (m *Maintainer) Apply(view string, bag map[string]*BagDelta) (*delta.Set, error) {
	if m == nil {
		return nil, fmt.Errorf("maint: no maintainer")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	vs, ok := m.views[view]
	if !ok {
		return nil, fmt.Errorf("maint: view %q not registered", view)
	}
	if !vs.seeded || vs.dirty {
		return nil, fmt.Errorf("maint: counts of %q not seeded", view)
	}
	out := delta.New()
	var applied, retracted int64
	for key, bd := range bag {
		if bd.N == 0 {
			continue
		}
		old, present := vs.counts[key]
		n := old.n + bd.N
		if n < 0 {
			return nil, fmt.Errorf("maint: support of %s%s would drop to %d (counts out of sync)", view, bd.Tuple, n)
		}
		m.recordCountUndo(vs, key, old, present)
		if n == 0 {
			delete(vs.counts, key)
		} else {
			vs.counts[key] = centry{tuple: bd.Tuple, n: n}
		}
		applied++
		switch {
		case old.n == 0 && n > 0:
			out.Insert(bd.Tuple)
		case old.n > 0 && n == 0:
			out.Delete(bd.Tuple)
			retracted++
		}
	}
	m.met.Applied.Add(applied)
	m.met.Retractions.Add(retracted)
	m.met.CountedTuples.Set(m.countedTuplesLocked())
	return out, nil
}

// Support returns a tuple's current derivation count (0 when untracked)
// and whether the view has seeded, clean counts at all.
func (m *Maintainer) Support(view string, t types.Tuple) (int64, bool) {
	if m == nil {
		return 0, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	vs, ok := m.views[view]
	if !ok || !vs.seeded || vs.dirty {
		return 0, false
	}
	return vs.counts[t.Key()].n, true
}

// VerifyCounts checks the counting invariant for one view: the
// maintained counts must equal a fresh bag enumeration of the current
// state. Views that are unseeded or dirty are vacuously consistent
// (they reseed before their next use). enumerate yields the view's
// current-state bag extent.
func (m *Maintainer) VerifyCounts(view string, enumerate func(emit func(types.Tuple) error) error) error {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	vs, ok := m.views[view]
	if !ok || !vs.seeded || vs.dirty {
		m.mu.Unlock()
		return nil
	}
	have := make(map[string]centry, len(vs.counts))
	for k, e := range vs.counts {
		have[k] = e
	}
	m.mu.Unlock()
	fresh := map[string]int64{}
	if err := enumerate(func(t types.Tuple) error {
		fresh[t.Key()]++
		return nil
	}); err != nil {
		return err
	}
	for k, n := range fresh {
		if have[k].n != n {
			return fmt.Errorf("maint: %s support of %q is %d, fresh evaluation derives it %d time(s)", view, k, have[k].n, n)
		}
	}
	for k, e := range have {
		if fresh[k] == 0 {
			return fmt.Errorf("maint: %s carries support %d for %s, which is no longer derivable", view, e.n, e.tuple)
		}
	}
	return nil
}

// OnEnd closes the transaction journal: on commit the journal is simply
// discarded (the counts already reflect the committed state); on abort
// it is replayed in reverse, restoring every touched count, store and
// flag to its pre-transaction value.
func (m *Maintainer) OnEnd(committed bool) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if !committed {
		for i := len(m.undo) - 1; i >= 0; i-- {
			u := m.undo[i]
			switch u.kind {
			case undoCount:
				if u.present {
					u.vs.counts[u.key] = u.old
				} else {
					delete(u.vs.counts, u.key)
				}
			case undoState:
				u.vs.counts = u.oldCounts
				u.vs.seeded = u.oldSeeded
				u.vs.dirty = u.oldDirty
			case undoDirty:
				u.vs.dirty = u.oldDirty
			}
		}
		m.met.Rollbacks.Inc()
		m.met.CountedTuples.Set(m.countedTuplesLocked())
	}
	m.undo = nil
	m.touched = nil
	m.stateTouched = nil
}

// recordCountUndo journals one tuple's pre-image, first touch per
// transaction. A whole-store undo recorded earlier in the same
// transaction subsumes later key entries only for the replaced map;
// key undos always refer to the live map, and reverse-order replay
// keeps the two consistent. Caller holds m.mu.
func (m *Maintainer) recordCountUndo(vs *viewState, key string, old centry, present bool) {
	if m.touched == nil {
		m.touched = map[*viewState]map[string]bool{}
	}
	tk := m.touched[vs]
	if tk == nil {
		tk = map[string]bool{}
		m.touched[vs] = tk
	}
	if tk[key] {
		return
	}
	tk[key] = true
	m.undo = append(m.undo, undoEntry{kind: undoCount, vs: vs, key: key, old: old, present: present})
}

// recordStateUndo journals the whole count store (pointer swap), first
// touch per transaction. Caller holds m.mu.
func (m *Maintainer) recordStateUndo(vs *viewState) {
	if m.stateTouched[vs] {
		return
	}
	m.markStateTouched(vs)
	m.undo = append(m.undo, undoEntry{
		kind: undoState, vs: vs,
		oldCounts: vs.counts, oldSeeded: vs.seeded, oldDirty: vs.dirty,
	})
	// The store is about to be replaced wholesale: per-key touch marks
	// for the old map no longer apply to the new one.
	if m.touched != nil {
		delete(m.touched, vs)
	}
}

func (m *Maintainer) markStateTouched(vs *viewState) {
	if m.stateTouched == nil {
		m.stateTouched = map[*viewState]bool{}
	}
	m.stateTouched[vs] = true
}

// countedTuplesLocked sums the live count-store sizes. Caller holds
// m.mu.
func (m *Maintainer) countedTuplesLocked() int64 {
	var n int64
	for _, vs := range m.views {
		n += int64(len(vs.counts))
	}
	return n
}
