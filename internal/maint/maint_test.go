package maint

import (
	"strings"
	"testing"

	"partdiff/internal/types"
)

func tup(vs ...int64) types.Tuple {
	t := make(types.Tuple, len(vs))
	for i, v := range vs {
		t[i] = types.Int(v)
	}
	return t
}

// bag builds an Apply argument from (tuple, delta) pairs.
func bag(pairs ...interface{}) map[string]*BagDelta {
	out := map[string]*BagDelta{}
	for i := 0; i < len(pairs); i += 2 {
		t := pairs[i].(types.Tuple)
		n := int64(pairs[i+1].(int))
		k := t.Key()
		if e, ok := out[k]; ok {
			e.N += n
		} else {
			out[k] = &BagDelta{Tuple: t, N: n}
		}
	}
	return out
}

// enumOf returns an enumerate callback yielding each tuple as many
// times as its paired multiplicity.
func enumOf(pairs ...interface{}) func(func(types.Tuple) error) error {
	return func(emit func(types.Tuple) error) error {
		for i := 0; i < len(pairs); i += 2 {
			t := pairs[i].(types.Tuple)
			for n := pairs[i+1].(int); n > 0; n-- {
				if err := emit(t); err != nil {
					return err
				}
			}
		}
		return nil
	}
}

func seeded(t *testing.T, cfg Config) *Maintainer {
	t.Helper()
	m := New(cfg)
	m.Register("v", "canon")
	if err := m.Reseed("v", enumOf(tup(1), 2, tup(2), 1)); err != nil {
		t.Fatal(err)
	}
	m.OnEnd(true) // the seeding transaction commits
	return m
}

// TestApplyTransitions pins the counting contract: only 0↔positive
// support transitions surface in the node Δ; everything else is
// support-only bookkeeping.
func TestApplyTransitions(t *testing.T) {
	m := seeded(t, Config{Counting: true})

	// 2→1: a duplicate derivation went away; no Δ, no probe needed.
	d, err := m.Apply("v", bag(tup(1), -1))
	if err != nil {
		t.Fatal(err)
	}
	if !d.IsEmpty() {
		t.Errorf("support 2→1 emitted %v, want nothing", d)
	}
	if n, ok := m.Support("v", tup(1)); !ok || n != 1 {
		t.Errorf("support = %d,%v, want 1,true", n, ok)
	}

	// 1→0: the last derivation went away; a genuine retraction.
	d, err = m.Apply("v", bag(tup(1), -1))
	if err != nil {
		t.Fatal(err)
	}
	if d.Minus().Len() != 1 || !d.Minus().Contains(tup(1)) || d.Plus().Len() != 0 {
		t.Errorf("support 1→0 emitted %v, want -{(1)}", d)
	}

	// 0→2: a new tuple (derived twice at once) is a single insertion.
	d, err = m.Apply("v", bag(tup(3), 2))
	if err != nil {
		t.Fatal(err)
	}
	if d.Plus().Len() != 1 || !d.Plus().Contains(tup(3)) || d.Minus().Len() != 0 {
		t.Errorf("support 0→2 emitted %v, want +{(3)}", d)
	}

	// 1→3: more duplicate support; silent.
	d, err = m.Apply("v", bag(tup(2), 2))
	if err != nil {
		t.Fatal(err)
	}
	if !d.IsEmpty() {
		t.Errorf("support 1→3 emitted %v, want nothing", d)
	}

	// The maintained counts still match a fresh bag evaluation.
	if err := m.VerifyCounts("v", enumOf(tup(2), 3, tup(3), 2)); err != nil {
		t.Errorf("VerifyCounts after transitions: %v", err)
	}
}

func TestApplyUnderflowIsAnError(t *testing.T) {
	m := seeded(t, Config{Counting: true})
	if _, err := m.Apply("v", bag(tup(2), -5)); err == nil || !strings.Contains(err.Error(), "out of sync") {
		t.Fatalf("underflow error = %v, want counts-out-of-sync error", err)
	}
}

func TestApplyRequiresSeededCounts(t *testing.T) {
	m := New(Config{Counting: true})
	m.Register("v", "canon")
	if _, err := m.Apply("v", bag(tup(1), 1)); err == nil {
		t.Fatal("Apply on unseeded counts succeeded")
	}
	if !m.NeedsReseed("v") {
		t.Error("unseeded view does not report NeedsReseed")
	}
	if _, err := m.Apply("nosuch", bag(tup(1), 1)); err == nil {
		t.Fatal("Apply on unregistered view succeeded")
	}
}

// TestRollbackRestoresCounts drives every undo-journal entry kind
// through an abort and checks the pre-transaction image comes back
// exactly: per-key count changes, a mid-transaction reseed (whole-store
// swap), and a MarkDirty flag.
func TestRollbackRestoresCounts(t *testing.T) {
	m := seeded(t, Config{Counting: true})

	if _, err := m.Apply("v", bag(tup(1), -2, tup(2), 1, tup(9), 3)); err != nil {
		t.Fatal(err)
	}
	if err := m.Reseed("v", enumOf(tup(7), 1)); err != nil {
		t.Fatal(err)
	}
	m.MarkDirty("v")
	m.OnEnd(false) // abort

	if m.NeedsReseed("v") {
		t.Error("rollback left the view unseeded/dirty")
	}
	for _, c := range []struct {
		tu   types.Tuple
		want int64
	}{{tup(1), 2}, {tup(2), 1}, {tup(9), 0}, {tup(7), 0}} {
		if n, ok := m.Support("v", c.tu); !ok || n != c.want {
			t.Errorf("support%s = %d,%v after rollback, want %d,true", c.tu, n, ok, c.want)
		}
	}
	if err := m.VerifyCounts("v", enumOf(tup(1), 2, tup(2), 1)); err != nil {
		t.Errorf("VerifyCounts after rollback: %v", err)
	}
}

func TestCommitKeepsChanges(t *testing.T) {
	m := seeded(t, Config{Counting: true})
	if _, err := m.Apply("v", bag(tup(1), -1)); err != nil {
		t.Fatal(err)
	}
	m.OnEnd(true)
	// A later abort must not resurrect the committed transaction's
	// journal.
	m.OnEnd(false)
	if n, _ := m.Support("v", tup(1)); n != 1 {
		t.Errorf("support after commit = %d, want 1", n)
	}
}

// TestRegisterCanon: re-registering with the same canonical definition
// keeps the counts; a changed definition drops them for lazy reseed.
func TestRegisterCanon(t *testing.T) {
	m := seeded(t, Config{Counting: true})
	m.OnEnd(true)

	m.Register("v", "canon")
	if m.NeedsReseed("v") {
		t.Error("same-definition registration dropped the counts")
	}
	m.Register("v", "canon2")
	if !m.NeedsReseed("v") {
		t.Error("changed-definition registration kept stale counts")
	}
	// The drop is journaled: a rollback restores the old counts.
	m.OnEnd(false)
	if m.NeedsReseed("v") {
		t.Error("rolled-back redefinition left the counts dropped")
	}
	if n, ok := m.Support("v", tup(1)); !ok || n != 2 {
		t.Errorf("support = %d,%v after redefinition rollback, want 2,true", n, ok)
	}
}

func TestMarkDirtyForcesReseed(t *testing.T) {
	m := seeded(t, Config{Counting: true})
	m.OnEnd(true)
	m.MarkDirty("v")
	if !m.NeedsReseed("v") {
		t.Error("dirty view does not need a reseed")
	}
	if _, ok := m.Support("v", tup(1)); ok {
		t.Error("dirty view still answers Support queries")
	}
	// Dirty counts are vacuously consistent — they reseed before use.
	if err := m.VerifyCounts("v", enumOf()); err != nil {
		t.Errorf("VerifyCounts on dirty view: %v", err)
	}
}

func TestVerifyCountsDetectsDrift(t *testing.T) {
	m := seeded(t, Config{Counting: true})
	if err := m.VerifyCounts("v", enumOf(tup(1), 2, tup(2), 1)); err != nil {
		t.Errorf("consistent counts reported drift: %v", err)
	}
	if err := m.VerifyCounts("v", enumOf(tup(1), 1, tup(2), 1)); err == nil {
		t.Error("wrong multiplicity not detected")
	}
	if err := m.VerifyCounts("v", enumOf(tup(1), 2)); err == nil {
		t.Error("stale supported tuple not detected")
	}
	if err := m.VerifyCounts("v", enumOf(tup(1), 2, tup(2), 1, tup(4), 1)); err == nil {
		t.Error("missing tuple not detected")
	}
}

// TestSetCountingInvalidatesSeeds: enabling counting after it was off
// must force a reseed — whatever the counts say predates the gap.
func TestSetCountingInvalidatesSeeds(t *testing.T) {
	m := seeded(t, Config{Counting: true})
	m.OnEnd(true)
	m.SetCounting(false)
	m.SetCounting(true)
	m.OnEnd(true)
	if !m.NeedsReseed("v") {
		t.Error("re-enabled counting trusts counts from before the gap")
	}
}

// TestChooserFirstDecision: the first decision for a view is taken
// without hysteresis, and counts as a switch exactly when it moves the
// view off the Incremental default.
func TestChooserFirstDecision(t *testing.T) {
	m := New(Config{Hybrid: true})
	m.Register("tiny", "c")
	m.Register("big", "c")

	// Tiny extent, massive seed: recompute wins cold (extent×4 vs
	// seed×16) and the first decision is journaled as a switch.
	if got := m.Choose("tiny", 100, 1); got != Recompute {
		t.Fatalf("Choose(tiny) = %v, want recompute", got)
	}
	if m.Switches() != 1 {
		t.Errorf("switches = %d after first recompute decision, want 1", m.Switches())
	}
	// Large extent, small seed: incremental wins; staying on the
	// default is not a switch.
	if got := m.Choose("big", 1, 1000); got != Incremental {
		t.Fatalf("Choose(big) = %v, want incremental", got)
	}
	if m.Switches() != 1 {
		t.Errorf("switches = %d after incremental decision, want 1", m.Switches())
	}
	decs := m.Decisions()
	if len(decs) != 2 || !decs[0].Switched || decs[1].Switched {
		t.Errorf("decision journal = %+v, want [switched, not-switched]", decs)
	}
}

// TestChooserHysteresis: after the first decision a flip needs the
// alternative to win by HysteresisFactor for HysteresisRuns consecutive
// waves.
func TestChooserHysteresis(t *testing.T) {
	m := New(Config{Hybrid: true, HysteresisRuns: 2, HysteresisFactor: 2})
	m.Register("v", "c")
	if got := m.Choose("v", 1, 1000); got != Incremental {
		t.Fatalf("first decision = %v, want incremental", got)
	}

	// Observed costs now favor recompute overwhelmingly…
	m.ObserveIncremental("v", 1, 1000) // 1000 scanned per seed tuple
	m.ObserveRecompute("v", 10)        // 10 scanned per recompute

	// …but one wave is not enough.
	if got := m.Choose("v", 1, 1000); got != Incremental {
		t.Fatalf("decision after 1 favorable wave = %v, want incremental (hysteresis)", got)
	}
	if got := m.Choose("v", 1, 1000); got != Recompute {
		t.Fatalf("decision after 2 favorable waves = %v, want recompute", got)
	}
	if m.Switches() != 1 {
		t.Errorf("switches = %d, want 1", m.Switches())
	}
	if lbl := m.StrategyLabel("v"); lbl != "recomp" {
		t.Errorf("StrategyLabel = %q, want recomp", lbl)
	}
}

// TestChooserMarginTooSmall: a cheaper alternative that doesn't clear
// the hysteresis factor never flips the strategy.
func TestChooserMarginTooSmall(t *testing.T) {
	m := New(Config{Hybrid: true, HysteresisRuns: 2, HysteresisFactor: 2})
	m.Register("v", "c")
	m.Choose("v", 1, 1000)
	m.ObserveIncremental("v", 1, 1000)
	m.ObserveRecompute("v", 600) // cheaper, but 600×2 > 1000
	for i := 0; i < 5; i++ {
		if got := m.Choose("v", 1, 1000); got != Incremental {
			t.Fatalf("wave %d flipped on a sub-hysteresis margin", i)
		}
	}
	if m.Switches() != 0 {
		t.Errorf("switches = %d, want 0", m.Switches())
	}
}

// TestSetHybridOffResetsDecisions: disabling the chooser returns every
// view to incremental; cost history survives for a warm re-enable.
func TestSetHybridOffResetsDecisions(t *testing.T) {
	m := New(Config{Hybrid: true})
	m.Register("v", "c")
	m.Choose("v", 100, 1) // recompute
	m.SetHybrid(false)
	if got := m.Choose("v", 100, 1); got != Incremental {
		t.Errorf("Choose with hybrid off = %v, want incremental", got)
	}
	if lbl := m.StrategyLabel("v"); lbl == "recomp" {
		t.Errorf("StrategyLabel with hybrid off = %q", lbl)
	}
	m.SetHybrid(true)
	if got := m.Choose("v", 100, 1); got != Recompute {
		t.Errorf("Choose after re-enable = %v, want recompute", got)
	}
}

func TestChooseDisabledRecordsNothing(t *testing.T) {
	m := New(Config{})
	m.Register("v", "c")
	if got := m.Choose("v", 1000, 1); got != Incremental {
		t.Errorf("Choose with hybrid off = %v", got)
	}
	if len(m.Decisions()) != 0 || m.Switches() != 0 {
		t.Error("disabled chooser journaled decisions")
	}
	var nilM *Maintainer
	if got := nilM.Choose("v", 1, 1); got != Incremental {
		t.Errorf("nil maintainer Choose = %v", got)
	}
	nilM.ObserveIncremental("v", 1, 1)
	nilM.ObserveRecompute("v", 1)
	nilM.OnEnd(false)
	nilM.MarkDirty("v")
}
