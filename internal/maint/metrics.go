package maint

import "partdiff/internal/obs"

// Metrics is the maintenance subsystem's meter set. The zero value is a
// valid disabled meter set (nil meters are no-ops).
type Metrics struct {
	// Applied counts tuples whose derivation count changed in Apply.
	Applied *obs.Counter
	// Retractions counts counting-detected net deletions (support hit
	// zero) — each one is a delete that needed no recomputation.
	Retractions *obs.Counter
	// Reseeds counts full count-store rebuilds.
	Reseeds *obs.Counter
	// Rollbacks counts transaction aborts replayed through the undo
	// journal.
	Rollbacks *obs.Counter
	// Decisions counts chooser decisions per resulting strategy.
	Decisions *obs.CounterVec
	// Switches counts strategy flips (hysteresis-confirmed).
	Switches *obs.Counter
	// CountedTuples is the number of distinct derived tuples currently
	// carrying a support count.
	CountedTuples *obs.Gauge
}

// NewMetrics registers the maintenance meters in r.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Applied:     r.Counter("partdiff_maint_applied_total", "Derived tuples whose derivation count changed."),
		Retractions: r.Counter("partdiff_maint_retractions_total", "Counting-detected net deletions (support reached zero, no recompute)."),
		Reseeds:     r.Counter("partdiff_maint_reseeds_total", "Full derivation-count store rebuilds."),
		Rollbacks:   r.Counter("partdiff_maint_rollbacks_total", "Transaction aborts rolled back through the count undo journal."),
		Decisions: r.CounterVec("partdiff_maint_decisions_total",
			"Hybrid chooser decisions per resulting strategy.", "strategy"),
		Switches:      r.Counter("partdiff_maint_strategy_switches_total", "Hybrid strategy flips (after hysteresis)."),
		CountedTuples: r.Gauge("partdiff_maint_counted_tuples", "Distinct derived tuples carrying a support count."),
	}
}
