// Package faultpointcheck is a repo-local vet check for fault injection
// hygiene. The crash-safety tests (internal/bench fault sweep,
// rules/checkphase) identify fault sites by faultinject.Point names;
// the sweep's coverage accounting silently breaks when a site passes an
// ad-hoc string instead of a declared constant, or when two constants
// collide on the same name. The check enforces:
//
//   - every Point constant declared in internal/faultinject has a
//     unique string value;
//   - every declared Point constant is referenced somewhere (a declared
//     but never-fired point is a stale entry the sweep will wait on);
//   - call sites pass declared constants: string literals given
//     directly to Fire/Arm, and faultinject.Point("...") conversions
//     outside the faultinject package, are flagged.
//
// It follows the go/analysis single-checker layout (a Check function
// producing position-tagged findings) but is built on go/parser and
// go/ast only, so it runs without golang.org/x/tools; cmd/faultpointcheck
// is the command wrapper CI runs.
package faultpointcheck

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Name and Doc identify the check, go/analysis style.
const (
	Name = "faultpointcheck"
	Doc  = "check that faultinject fault points are declared, unique, and passed as constants"
)

// faultinjectDir is the directory of the faultinject package, relative
// to the module root.
const faultinjectDir = "internal/faultinject"

// Finding is one diagnostic, positioned at the offending declaration or
// call site.
type Finding struct {
	Pos     token.Position
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s", f.Pos, f.Message)
}

// pointDecl records one declared Point constant.
type pointDecl struct {
	name  string
	value string
	pos   token.Position
}

// Check analyzes the Go module rooted at root and returns its findings,
// sorted by position. It is an error if the faultinject package cannot
// be found or any Go file fails to parse.
func Check(root string) ([]Finding, error) {
	fset := token.NewFileSet()
	decls, findings, err := declaredPoints(fset, filepath.Join(root, faultinjectDir))
	if err != nil {
		return nil, err
	}
	declared := map[string]pointDecl{}
	for _, d := range decls {
		declared[d.name] = d
	}

	used := map[string]bool{}
	err = walkGoFiles(root, func(path string) error {
		// The faultinject package declares the points; conversions and
		// bare strings inside it are its own business.
		if filepath.Dir(path) == filepath.Join(root, faultinjectDir) {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return err
		}
		findings = append(findings, checkFile(fset, file, declared, used)...)
		return nil
	})
	if err != nil {
		return nil, err
	}

	for _, d := range decls {
		if !used[d.name] {
			findings = append(findings, Finding{
				Pos:     d.pos,
				Message: fmt.Sprintf("fault point %s (%q) is declared but never referenced outside package faultinject", d.name, d.value),
			})
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return findings[i].Message < findings[j].Message
	})
	return findings, nil
}

// declaredPoints parses the faultinject package directory and collects
// its Point constants, flagging duplicate string values in place.
func declaredPoints(fset *token.FileSet, dir string) ([]pointDecl, []Finding, error) {
	pkgs, err := parser.ParseDir(fset, dir, nil, 0)
	if err != nil {
		return nil, nil, fmt.Errorf("parsing faultinject package: %w", err)
	}
	var decls []pointDecl
	var findings []Finding
	for _, pkg := range pkgs {
		if strings.HasSuffix(pkg.Name, "_test") {
			continue
		}
		var paths []string
		for path := range pkg.Files {
			paths = append(paths, path)
		}
		sort.Strings(paths)
		for _, path := range paths {
			for _, decl := range pkg.Files[path].Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.CONST {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || !isPointType(vs.Type) {
						continue
					}
					for i, name := range vs.Names {
						if i >= len(vs.Values) {
							continue
						}
						val, ok := stringLit(vs.Values[i])
						if !ok {
							continue
						}
						decls = append(decls, pointDecl{
							name:  name.Name,
							value: val,
							pos:   fset.Position(name.Pos()),
						})
					}
				}
			}
		}
	}
	byValue := map[string]pointDecl{}
	for _, d := range decls {
		if prev, ok := byValue[d.value]; ok {
			findings = append(findings, Finding{
				Pos:     d.pos,
				Message: fmt.Sprintf("fault point %s duplicates the name %q of %s: the sweep cannot tell their hits apart", d.name, d.value, prev.name),
			})
			continue
		}
		byValue[d.value] = d
	}
	return decls, findings, nil
}

// checkFile inspects one file outside the faultinject package: it flags
// string-literal fault points at Fire/Arm call sites and Point
// conversions, and records which declared constants are referenced.
func checkFile(fset *token.FileSet, file *ast.File, declared map[string]pointDecl, used map[string]bool) []Finding {
	var findings []Finding
	ast.Inspect(file, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			if pkg, ok := x.X.(*ast.Ident); ok && pkg.Name == "faultinject" {
				if _, ok := declared[x.Sel.Name]; ok {
					used[x.Sel.Name] = true
				}
			}
		case *ast.CallExpr:
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "Fire", "Arm", "Hits":
				if len(x.Args) == 0 {
					return true
				}
				if val, ok := stringLit(x.Args[0]); ok {
					findings = append(findings, Finding{
						Pos:     fset.Position(x.Args[0].Pos()),
						Message: fmt.Sprintf("string literal %q passed as fault point to %s; use a faultinject.Point constant%s", val, sel.Sel.Name, knownAs(declared, val)),
					})
				}
			case "Point":
				if pkg, ok := sel.X.(*ast.Ident); !ok || pkg.Name != "faultinject" {
					return true
				}
				if len(x.Args) != 1 {
					return true
				}
				if val, ok := stringLit(x.Args[0]); ok {
					findings = append(findings, Finding{
						Pos:     fset.Position(x.Pos()),
						Message: fmt.Sprintf("faultinject.Point(%q) conversion outside package faultinject; declare the point as a constant there%s", val, knownAs(declared, val)),
					})
				}
			}
		}
		return true
	})
	return findings
}

// knownAs names the declared constant for a string value, if any — the
// usual fix is to use it.
func knownAs(declared map[string]pointDecl, val string) string {
	for name, d := range declared {
		if d.value == val {
			return fmt.Sprintf(" (faultinject.%s)", name)
		}
	}
	return ""
}

// isPointType reports whether a const spec's type is the faultinject
// Point type (written either bare, inside the package, or qualified).
func isPointType(t ast.Expr) bool {
	switch x := t.(type) {
	case *ast.Ident:
		return x.Name == "Point"
	case *ast.SelectorExpr:
		pkg, ok := x.X.(*ast.Ident)
		return ok && pkg.Name == "faultinject" && x.Sel.Name == "Point"
	}
	return false
}

// stringLit unwraps a string literal expression.
func stringLit(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

// walkGoFiles visits every non-test-data Go file under root.
func walkGoFiles(root string, visit func(path string) error) error {
	return filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case "testdata", ".git":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		return visit(path)
	})
}
