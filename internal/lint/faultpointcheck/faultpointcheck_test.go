package faultpointcheck

import (
	"strings"
	"testing"
)

// TestLintFaultPointsTestdata checks every violation shape against the
// miniature module under testdata.
func TestLintFaultPointsTestdata(t *testing.T) {
	findings, err := Check("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, f := range findings {
		got = append(got, f.String())
	}
	want := []string{
		`DupDelete duplicates the name "store.delete" of StoreDelete`,
		`Orphan ("store.orphan") is declared but never referenced`,
		`string literal "store.insert" passed as fault point to Fire; use a faultinject.Point constant (faultinject.StoreInsert)`,
		`string literal "store.undeclared" passed as fault point to Arm`,
		`faultinject.Point("caller.adhoc") conversion outside package faultinject`,
	}
	for _, w := range want {
		found := false
		for _, g := range got {
			if strings.Contains(g, w) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing finding containing %q; got:\n%s", w, strings.Join(got, "\n"))
		}
	}
	// DupDelete is also unreferenced; nothing else should be flagged.
	if len(findings) != len(want)+1 {
		t.Errorf("want %d findings, got %d:\n%s", len(want)+1, len(findings), strings.Join(got, "\n"))
	}
	for _, f := range findings {
		if f.Pos.Filename == "" || f.Pos.Line == 0 {
			t.Errorf("finding without position: %s", f)
		}
	}
}

// TestLintFaultPointsRepo gates the real repository: every fault point
// is declared once, referenced, and passed as a constant.
func TestLintFaultPointsRepo(t *testing.T) {
	findings, err := Check("../../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
