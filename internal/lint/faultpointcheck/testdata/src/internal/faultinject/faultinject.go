// Package faultinject is a miniature copy of the real package shape,
// used to exercise the declaration checks.
package faultinject

// Point names one fault site.
type Point string

// The fault points of the fake module.
const (
	StoreInsert Point = "store.insert"
	StoreDelete Point = "store.delete"
	// DupDelete collides with StoreDelete — must be flagged.
	DupDelete Point = "store.delete"
	// Orphan is declared but never referenced — must be flagged.
	Orphan Point = "store.orphan"
)

// Injector is the minimal surface the call-site checks look for.
type Injector struct{}

// Fire reports an armed fault.
func (i *Injector) Fire(p Point) error { return nil }

// Arm schedules a fault.
func (i *Injector) Arm(p Point, n int, kind int) {}
