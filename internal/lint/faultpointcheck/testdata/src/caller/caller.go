// Package caller exercises the call-site checks: one clean use of a
// declared constant, plus every violation shape.
package caller

import "example/internal/faultinject"

func ok(inj *faultinject.Injector) {
	_ = inj.Fire(faultinject.StoreInsert)
	inj.Arm(faultinject.StoreDelete, 0, 0)
}

func bad(inj *faultinject.Injector) {
	_ = inj.Fire("store.insert")
	inj.Arm("store.undeclared", 1, 0)
	_ = inj.Fire(faultinject.Point("caller.adhoc"))
}
