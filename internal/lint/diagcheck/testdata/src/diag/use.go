package diag

// Emit builds a report line. The bare "OL001" literal should have been
// CodeGood; diagcheck flags it.
func Emit(msg string) string {
	return "OL001" + ": " + msg
}
