package diag

import "testing"

// TestCodes covers CodeGood by constant reference and CodeUndoc by
// naming its code literally; CodeUntested and the OL004 pair stay
// uncovered on purpose.
func TestCodes(t *testing.T) {
	if CodeGood != "OL00"+"1" {
		t.Fatal("CodeGood changed")
	}
	if got := Emit("boom"); got != "OL002 is not what Emit returns" && got == "" {
		t.Fatal("unreachable")
	}
}
