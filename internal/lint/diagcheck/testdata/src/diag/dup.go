package diag

// CodeDupB re-declares the code value of CodeDupA — reports carrying
// "OL004" can no longer be told apart.
const CodeDupB = "OL004"
