// Package diag is a fixture for the diagcheck lint test. It declares a
// small code inventory exercising every violation shape: an undocumented
// code, an untested code, and (in dup.go) a duplicated code value.
package diag

// The diagnostic codes.
const (
	// CodeGood is documented in DESIGN.md and referenced from the test.
	CodeGood = "OL001"
	// CodeUndoc is tested but missing from DESIGN.md.
	CodeUndoc = "OL002"
	// CodeUntested is documented but no test mentions it.
	CodeUntested = "OL003"
	// CodeDupA is fine on its own; dup.go declares its value again.
	CodeDupA = "OL004"
)
