package diagcheck

import (
	"strings"
	"testing"
)

// TestDiagCheckTestdata runs the checker over a fixture module built to
// trip every rule once: a duplicated code value, an undocumented code,
// an untested code, a bare literal at an emit site, and a stale
// DESIGN.md mention. The OL003–OL004 range in the fixture DESIGN.md
// also pins range expansion: neither code may be reported as
// undocumented.
func TestDiagCheckTestdata(t *testing.T) {
	findings, err := Check("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		`documents diagnostic code OL999, which is not declared anywhere`,
		`diagnostic code OL002 (CodeUndoc) is not documented`,
		`diagnostic code OL003 (CodeUntested) is not covered by any test`,
		`diagnostic code OL004 (CodeDupA) is not covered by any test`,
		`constant CodeDupB duplicates diagnostic code OL004 of CodeDupA`,
		`bare diagnostic code literal "OL001"`,
	}
	var all []string
	for _, f := range findings {
		if f.Pos.Filename == "" || f.Pos.Line == 0 {
			t.Errorf("finding without position: %v", f)
		}
		all = append(all, f.String())
	}
	joined := strings.Join(all, "\n")
	for _, w := range want {
		if !strings.Contains(joined, w) {
			t.Errorf("missing finding %q in:\n%s", w, joined)
		}
	}
	if len(findings) != len(want) {
		t.Errorf("got %d findings, want %d:\n%s", len(findings), len(want), joined)
	}
}

// TestDiagCheckRepo gates the real repository: the actual code
// inventory must be declared once, documented, constant-referenced at
// emit sites, and fixture-tested. A failure here usually means a new
// code landed without its DESIGN.md entry or golden test.
func TestDiagCheckRepo(t *testing.T) {
	findings, err := Check("../../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%v", f)
	}
}
