// Package diagcheck is a repo-local vet check for diagnostic-code
// hygiene. The static analyzer's OLxxx codes (internal/objectlog,
// internal/analyze) are a stable public surface: scripts grep shell
// output for them, DESIGN.md documents them, and golden tests pin each
// one's behavior. That contract silently rots when a code is declared
// twice, mentioned in the docs but never declared, or shipped without a
// test fixture. The check enforces, over the whole module:
//
//   - every OLxxx code is declared exactly once, as a string constant
//     (two constants with the same code value cannot be told apart in
//     reports);
//   - every bare "OLxxx" string literal outside a constant declaration
//     in non-test code is flagged — emit sites must use the declared
//     constant;
//   - every declared code is documented in DESIGN.md (code ranges like
//     "OL004–OL007" count for every code inside the range), and every
//     code DESIGN.md mentions is declared (no stale documentation);
//   - every declared code is covered by at least one test, either by
//     referencing its constant or by naming the code literally.
//
// Like faultpointcheck it follows the go/analysis single-checker layout
// but is built on go/parser and go/ast only, so it runs without
// golang.org/x/tools; cmd/diagcheck is the command wrapper CI runs.
package diagcheck

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Name and Doc identify the check, go/analysis style.
const (
	Name = "diagcheck"
	Doc  = "check that OLxxx diagnostic codes are declared once, documented in DESIGN.md, and covered by tests"
)

// docFile is the documentation file every declared code must appear in,
// relative to the module root.
const docFile = "DESIGN.md"

// codeRe matches one diagnostic code. Anchored variants derive from it.
var (
	codeRe     = regexp.MustCompile(`OL[0-9]{3}`)
	codeOnlyRe = regexp.MustCompile(`^OL[0-9]{3}$`)
	rangeRe    = regexp.MustCompile(`OL([0-9]{3})\s*[-–]\s*OL([0-9]{3})`)
)

// Finding is one diagnostic, positioned at the offending declaration,
// literal, or documentation file.
type Finding struct {
	Pos     token.Position
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s", f.Pos, f.Message)
}

// codeDecl records one declared diagnostic-code constant.
type codeDecl struct {
	constName string
	code      string
	pos       token.Position
}

// Check analyzes the Go module rooted at root and returns its findings,
// sorted by position. It is an error if no diagnostic codes are
// declared at all (the usual cause is a wrong root), if DESIGN.md is
// missing, or if any Go file fails to parse.
func Check(root string) ([]Finding, error) {
	fset := token.NewFileSet()
	var decls []codeDecl
	var findings []Finding
	covered := map[string]bool{}        // code -> referenced from a test
	constCodes := map[string][]string{} // const name -> codes it declares

	// First pass: declarations and bare literals in non-test files.
	// Test files are collected for the coverage pass, which needs the
	// declaration table.
	var testFiles []*ast.File
	err := walkGoFiles(root, func(path string) error {
		file, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return err
		}
		if strings.HasSuffix(path, "_test.go") {
			testFiles = append(testFiles, file)
			return nil
		}
		ds, fs := checkSourceFile(fset, file)
		decls = append(decls, ds...)
		findings = append(findings, fs...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(decls) == 0 {
		return nil, fmt.Errorf("no OLxxx code constants found under %s; wrong module root?", root)
	}
	for _, d := range decls {
		constCodes[d.constName] = append(constCodes[d.constName], d.code)
	}

	// Exactly-once: two constants sharing a code value are
	// indistinguishable in reports.
	byCode := map[string]codeDecl{}
	sort.Slice(decls, func(i, j int) bool { return posLess(decls[i].pos, decls[j].pos) })
	for _, d := range decls {
		if prev, ok := byCode[d.code]; ok {
			findings = append(findings, Finding{
				Pos:     d.pos,
				Message: fmt.Sprintf("constant %s duplicates diagnostic code %s of %s: reports cannot tell them apart", d.constName, d.code, prev.constName),
			})
			continue
		}
		byCode[d.code] = d
	}

	// Coverage pass over the test files.
	for _, file := range testFiles {
		coverFile(file, byCode, constCodes, covered)
	}

	// Documentation pass.
	documented, docPos, err := documentedCodes(root)
	if err != nil {
		return nil, err
	}

	codes := make([]string, 0, len(byCode))
	for c := range byCode {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	for _, c := range codes {
		d := byCode[c]
		if !documented[c] {
			findings = append(findings, Finding{
				Pos:     d.pos,
				Message: fmt.Sprintf("diagnostic code %s (%s) is not documented in %s", c, d.constName, docFile),
			})
		}
		if !covered[c] {
			findings = append(findings, Finding{
				Pos:     d.pos,
				Message: fmt.Sprintf("diagnostic code %s (%s) is not covered by any test", c, d.constName),
			})
		}
	}
	var stale []string
	for c := range documented {
		if _, ok := byCode[c]; !ok {
			stale = append(stale, c)
		}
	}
	sort.Strings(stale)
	for _, c := range stale {
		findings = append(findings, Finding{
			Pos:     docPos,
			Message: fmt.Sprintf("%s documents diagnostic code %s, which is not declared anywhere", docFile, c),
		})
	}

	sort.Slice(findings, func(i, j int) bool {
		if !posEq(findings[i].Pos, findings[j].Pos) {
			return posLess(findings[i].Pos, findings[j].Pos)
		}
		return findings[i].Message < findings[j].Message
	})
	return findings, nil
}

// checkSourceFile collects code-constant declarations from one non-test
// file and flags bare OLxxx literals outside those declarations.
func checkSourceFile(fset *token.FileSet, file *ast.File) ([]codeDecl, []Finding) {
	var decls []codeDecl
	declLits := map[ast.Expr]bool{}
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if i >= len(vs.Values) {
					continue
				}
				val, ok := stringLit(vs.Values[i])
				if !ok || !codeOnlyRe.MatchString(val) {
					continue
				}
				declLits[vs.Values[i]] = true
				decls = append(decls, codeDecl{
					constName: name.Name,
					code:      val,
					pos:       fset.Position(name.Pos()),
				})
			}
		}
	}
	var findings []Finding
	ast.Inspect(file, func(n ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING || declLits[lit] {
			return true
		}
		val, ok := stringLit(lit)
		if !ok || !codeOnlyRe.MatchString(val) {
			return true
		}
		findings = append(findings, Finding{
			Pos:     fset.Position(lit.Pos()),
			Message: fmt.Sprintf("bare diagnostic code literal %q; use the declared constant", val),
		})
		return true
	})
	return decls, findings
}

// coverFile records which declared codes a test file exercises: string
// literals containing a code, and identifier or selector references to
// a code constant.
func coverFile(file *ast.File, byCode map[string]codeDecl, constCodes map[string][]string, covered map[string]bool) {
	mark := func(name string) {
		for _, c := range constCodes[name] {
			covered[c] = true
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.BasicLit:
			if x.Kind != token.STRING {
				return true
			}
			if val, ok := stringLit(x); ok {
				for _, c := range codeRe.FindAllString(val, -1) {
					if _, ok := byCode[c]; ok {
						covered[c] = true
					}
				}
			}
		case *ast.Ident:
			mark(x.Name)
		case *ast.SelectorExpr:
			mark(x.Sel.Name)
		}
		return true
	})
}

// documentedCodes scans DESIGN.md for code mentions. Ranges written as
// "OL004–OL007" (hyphen or en dash) count for every code inside.
func documentedCodes(root string) (map[string]bool, token.Position, error) {
	path := filepath.Join(root, docFile)
	pos := token.Position{Filename: path, Line: 1}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, pos, fmt.Errorf("reading %s: %w", docFile, err)
	}
	out := map[string]bool{}
	for _, m := range rangeRe.FindAllStringSubmatch(string(data), -1) {
		lo, _ := strconv.Atoi(m[1])
		hi, _ := strconv.Atoi(m[2])
		for n := lo; n <= hi; n++ {
			out[fmt.Sprintf("OL%03d", n)] = true
		}
	}
	for _, c := range codeRe.FindAllString(string(data), -1) {
		out[c] = true
	}
	return out, pos, nil
}

func posLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

func posEq(a, b token.Position) bool {
	return a.Filename == b.Filename && a.Line == b.Line && a.Column == b.Column
}

// stringLit unwraps a string literal expression.
func stringLit(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

// walkGoFiles visits every non-test-data Go file under root.
func walkGoFiles(root string, visit func(path string) error) error {
	return filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case "testdata", ".git":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		return visit(path)
	})
}
