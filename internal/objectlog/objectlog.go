// Package objectlog defines the intermediate representation queries and
// rule conditions are compiled into: ObjectLog, a typed Datalog variant
// (Litwin & Risch) where stored functions become facts (base relations)
// and derived functions become Horn clauses (derived relations).
//
// A literal may reference a predicate's current state, its old state
// (logical rollback), or one of its differentials Δ+P / Δ−P — these
// annotated references are what the partial differencing compiler in
// internal/diff produces (§4.3–§4.4 of the paper).
package objectlog

import (
	"fmt"
	"sort"
	"strings"

	"partdiff/internal/types"
)

// Term is a variable or a constant.
type Term struct {
	IsVar bool
	Var   string
	Const types.Value
}

// V returns a variable term.
func V(name string) Term { return Term{IsVar: true, Var: name} }

// C returns a constant term.
func C(v types.Value) Term { return Term{Const: v} }

// CInt returns a constant integer term.
func CInt(i int64) Term { return C(types.Int(i)) }

// String renders the term: variables by name, constants by value.
func (t Term) String() string {
	if t.IsVar {
		return t.Var
	}
	return t.Const.String()
}

// Equal reports structural equality of terms.
func (t Term) Equal(u Term) bool {
	if t.IsVar != u.IsVar {
		return false
	}
	if t.IsVar {
		return t.Var == u.Var
	}
	return t.Const.Equal(u.Const)
}

// DeltaKind annotates a literal with which state of its predicate it
// references.
type DeltaKind int

// The delta annotations.
const (
	// DeltaNone references the predicate's full extent.
	DeltaNone DeltaKind = iota
	// DeltaPlus references Δ+P — the net insertions.
	DeltaPlus
	// DeltaMinus references Δ−P — the net deletions.
	DeltaMinus
)

// String renders the annotation as a prefix.
func (d DeltaKind) String() string {
	switch d {
	case DeltaPlus:
		return "Δ+"
	case DeltaMinus:
		return "Δ-"
	default:
		return ""
	}
}

// Builtin predicate names. Comparisons test two bound arguments;
// arithmetic literals op(a,b,r) compute r from bound a,b (or test r if
// bound). eq(a,b) binds whichever side is free, or tests if both bound.
const (
	BuiltinLT    = "lt"
	BuiltinLE    = "le"
	BuiltinGT    = "gt"
	BuiltinGE    = "ge"
	BuiltinEQ    = "eq"
	BuiltinNE    = "ne"
	BuiltinPlus  = "plus"
	BuiltinMinus = "minus"
	BuiltinTimes = "times"
	BuiltinDiv   = "div"
)

// IsBuiltin reports whether name is an evaluable builtin predicate.
func IsBuiltin(name string) bool {
	switch name {
	case BuiltinLT, BuiltinLE, BuiltinGT, BuiltinGE, BuiltinEQ, BuiltinNE,
		BuiltinPlus, BuiltinMinus, BuiltinTimes, BuiltinDiv:
		return true
	}
	return false
}

// IsComparison reports whether name is a two-argument test builtin.
func IsComparison(name string) bool {
	switch name {
	case BuiltinLT, BuiltinLE, BuiltinGT, BuiltinGE, BuiltinEQ, BuiltinNE:
		return true
	}
	return false
}

// IsArithmetic reports whether name is a three-argument computing
// builtin.
func IsArithmetic(name string) bool {
	switch name {
	case BuiltinPlus, BuiltinMinus, BuiltinTimes, BuiltinDiv:
		return true
	}
	return false
}

// TypePredPrefix marks predicates that denote type extents: the literal
// type:item(I) iterates all instances of type item (the "for each item i"
// of AMOSQL).
const TypePredPrefix = "type:"

// TypePred returns the extent predicate name for a type.
func TypePred(typeName string) string { return TypePredPrefix + typeName }

// IsTypePred reports whether the predicate denotes a type extent, and if
// so which type.
func IsTypePred(name string) (string, bool) {
	if strings.HasPrefix(name, TypePredPrefix) {
		return name[len(TypePredPrefix):], true
	}
	return "", false
}

// Literal is one atom of a clause body (or a clause head).
type Literal struct {
	Pred    string
	Args    []Term
	Negated bool      // safe negation (¬P): all variables bound elsewhere
	Delta   DeltaKind // reference Δ+P / Δ−P instead of P
	Old     bool      // evaluate P in the old database state (P_old)
}

// Lit builds a positive, current-state literal.
func Lit(pred string, args ...Term) Literal {
	return Literal{Pred: pred, Args: args}
}

// NotLit builds a negated literal.
func NotLit(pred string, args ...Term) Literal {
	return Literal{Pred: pred, Args: args, Negated: true}
}

// WithDelta returns a copy of l annotated with the given delta kind.
func (l Literal) WithDelta(d DeltaKind) Literal {
	l2 := l.clone()
	l2.Delta = d
	return l2
}

// WithOld returns a copy of l marked to evaluate in the old state.
// Delta-annotated and builtin literals are unaffected by old-state
// marking (Δ-sets are state-period values; builtins are state-free).
func (l Literal) WithOld() Literal {
	l2 := l.clone()
	if l2.Delta == DeltaNone && !IsBuiltin(l2.Pred) {
		l2.Old = true
	}
	return l2
}

func (l Literal) clone() Literal {
	args := make([]Term, len(l.Args))
	copy(args, l.Args)
	l.Args = args
	return l
}

// Vars appends the variable names of the literal to dst (with
// duplicates).
func (l Literal) Vars(dst []string) []string {
	for _, a := range l.Args {
		if a.IsVar {
			dst = append(dst, a.Var)
		}
	}
	return dst
}

// Rename returns a copy of the literal with every variable renamed
// through sub (variables not in sub are kept).
func (l Literal) Rename(sub map[string]string) Literal {
	l2 := l.clone()
	for i, a := range l2.Args {
		if a.IsVar {
			if nv, ok := sub[a.Var]; ok {
				l2.Args[i] = V(nv)
			}
		}
	}
	return l2
}

// Substitute returns a copy with variables replaced by terms per sub.
func (l Literal) Substitute(sub map[string]Term) Literal {
	l2 := l.clone()
	for i, a := range l2.Args {
		if a.IsVar {
			if nt, ok := sub[a.Var]; ok {
				l2.Args[i] = nt
			}
		}
	}
	return l2
}

// String renders the literal in paper style, e.g. Δ+quantity(I,_G1),
// r_old(Y,Z), ¬supplies(S,I), _G1 < _G2.
func (l Literal) String() string {
	var sb strings.Builder
	if l.Negated {
		sb.WriteString("¬")
	}
	if IsComparison(l.Pred) && len(l.Args) == 2 {
		op := map[string]string{
			BuiltinLT: "<", BuiltinLE: "<=", BuiltinGT: ">",
			BuiltinGE: ">=", BuiltinEQ: "=", BuiltinNE: "!=",
		}[l.Pred]
		fmt.Fprintf(&sb, "%s %s %s", l.Args[0], op, l.Args[1])
		return sb.String()
	}
	if IsArithmetic(l.Pred) && len(l.Args) == 3 {
		op := map[string]string{
			BuiltinPlus: "+", BuiltinMinus: "-", BuiltinTimes: "*", BuiltinDiv: "/",
		}[l.Pred]
		fmt.Fprintf(&sb, "%s = %s %s %s", l.Args[2], l.Args[0], op, l.Args[1])
		return sb.String()
	}
	sb.WriteString(l.Delta.String())
	sb.WriteString(l.Pred)
	if l.Old {
		sb.WriteString("_old")
	}
	sb.WriteByte('(')
	for i, a := range l.Args {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(a.String())
	}
	sb.WriteByte(')')
	return sb.String()
}

// Clause is a Horn clause: Head ← Body (a conjunction).
type Clause struct {
	Head Literal
	Body []Literal
}

// NewClause builds a clause.
func NewClause(head Literal, body ...Literal) Clause {
	return Clause{Head: head, Body: body}
}

// Clone returns a deep copy of the clause.
func (c Clause) Clone() Clause {
	h := c.Head.clone()
	body := make([]Literal, len(c.Body))
	for i, l := range c.Body {
		body[i] = l.clone()
	}
	return Clause{Head: h, Body: body}
}

// Vars returns the distinct variable names of the clause, in first-use
// order.
func (c Clause) Vars() []string {
	var all []string
	all = c.Head.Vars(all)
	for _, l := range c.Body {
		all = l.Vars(all)
	}
	seen := map[string]bool{}
	var out []string
	for _, v := range all {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// Rename returns a copy with all variables renamed through sub.
func (c Clause) Rename(sub map[string]string) Clause {
	out := Clause{Head: c.Head.Rename(sub)}
	out.Body = make([]Literal, len(c.Body))
	for i, l := range c.Body {
		out.Body[i] = l.Rename(sub)
	}
	return out
}

// RenameApart returns a copy of the clause with every variable given a
// fresh name using the counter, so it shares no variables with any other
// clause. The counter is advanced.
func (c Clause) RenameApart(counter *int) Clause {
	sub := map[string]string{}
	for _, v := range c.Vars() {
		*counter++
		sub[v] = fmt.Sprintf("_R%d", *counter)
	}
	return c.Rename(sub)
}

// String renders the clause in paper style:
//
//	p(X,Z) ← q(X,Y) ∧ r(Y,Z)
func (c Clause) String() string {
	var sb strings.Builder
	sb.WriteString(c.Head.String())
	if len(c.Body) == 0 {
		return sb.String()
	}
	sb.WriteString(" ← ")
	for i, l := range c.Body {
		if i > 0 {
			sb.WriteString(" ∧ ")
		}
		sb.WriteString(l.String())
	}
	return sb.String()
}

// Aggregate operators (extension beyond the paper's core; aggregates
// are listed as future work in §8).
const (
	AggCount = "count"
	AggSum   = "sum"
	AggMin   = "min"
	AggMax   = "max"
)

// IsAggregateOp reports whether op is a supported aggregate operator.
func IsAggregateOp(op string) bool {
	switch op {
	case AggCount, AggSum, AggMin, AggMax:
		return true
	}
	return false
}

// Def is a derived predicate definition: one or more clauses with the
// same head predicate. Multiple clauses form a disjunction (ObjectLog
// puts disjunctions in the body; after DNF normalization each disjunct
// is a clause).
type Def struct {
	Name    string
	Arity   int
	Clauses []Clause

	// Aggregate, when non-empty, marks this definition as an aggregate
	// view. The clauses compute the pre-aggregation relation: the
	// first GroupCols head columns are the group key, the LAST column
	// is the aggregated value, and any columns in between are witnesses
	// that preserve multiplicity under set semantics (e.g. the employee
	// whose salary is summed). The externally visible extent has arity
	// GroupCols+1: one tuple per group, with the folded value last.
	// Aggregate views are never expanded inline and are monitored by
	// re-evaluation (old state vs new state) rather than by partial
	// differentials.
	Aggregate string
	// GroupCols is the number of leading group-key columns of an
	// aggregate definition.
	GroupCols int
}

// ExternalArity is the arity of the predicate as seen by callers: for
// aggregate views GroupCols+1, otherwise Arity.
func (d *Def) ExternalArity() int {
	if d.Aggregate != "" {
		return d.GroupCols + 1
	}
	return d.Arity
}

// String renders the definition, one clause per line, prefixed with the
// aggregate operator for aggregate views.
func (d *Def) String() string {
	var sb strings.Builder
	if d.Aggregate != "" {
		fmt.Fprintf(&sb, "%s[%s/%d] ", d.Name, d.Aggregate, d.GroupCols)
	}
	for i, c := range d.Clauses {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(c.String())
	}
	return sb.String()
}

// Influents returns the distinct predicate names the definition's bodies
// reference (excluding builtins), sorted. These are the influents I_p of
// the paper: the relations whose changes can affect this predicate.
func (d *Def) Influents() []string {
	seen := map[string]bool{}
	for _, c := range d.Clauses {
		for _, l := range c.Body {
			if !IsBuiltin(l.Pred) {
				seen[l.Pred] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Program is a set of derived predicate definitions. Base predicates are
// any names not defined here (resolved against storage at evaluation
// time).
type Program struct {
	defs map[string]*Def
}

// NewProgram returns an empty program.
func NewProgram() *Program { return &Program{defs: map[string]*Def{}} }

// Define registers a derived predicate definition, replacing any
// previous definition of the same name.
func (p *Program) Define(d *Def) error {
	if d.Name == "" {
		return fmt.Errorf("definition must be named")
	}
	for _, c := range d.Clauses {
		if c.Head.Pred != d.Name {
			return fmt.Errorf("clause head %q does not match definition %q", c.Head.Pred, d.Name)
		}
		if len(c.Head.Args) != d.Arity {
			return fmt.Errorf("definition %q: clause head arity %d, want %d", d.Name, len(c.Head.Args), d.Arity)
		}
	}
	p.defs[d.Name] = d
	return nil
}

// Def looks up a derived definition.
func (p *Program) Def(name string) (*Def, bool) {
	d, ok := p.defs[name]
	return d, ok
}

// IsDerived reports whether name has a derived definition.
func (p *Program) IsDerived(name string) bool {
	_, ok := p.defs[name]
	return ok
}

// Names returns the derived predicate names, sorted.
func (p *Program) Names() []string {
	out := make([]string, 0, len(p.defs))
	for n := range p.defs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// reachable reports whether target is reachable from the body of from's
// definition through derived predicates.
func (p *Program) reachable(from, target string, seen map[string]bool) bool {
	def, ok := p.defs[from]
	if !ok {
		return false
	}
	for _, infl := range def.Influents() {
		if infl == target {
			return true
		}
		if seen[infl] {
			continue
		}
		seen[infl] = true
		if p.reachable(infl, target, seen) {
			return true
		}
	}
	return false
}

// IsRecursive reports whether the named predicate (transitively)
// depends on itself.
func (p *Program) IsRecursive(name string) bool {
	return p.reachable(name, name, map[string]bool{})
}

// Component returns the names of all derived predicates in name's
// recursive component (predicates that both reach name and are reached
// from it), including name itself when recursive. The result is sorted.
func (p *Program) Component(name string) []string {
	if !p.IsRecursive(name) {
		return nil
	}
	var out []string
	for n := range p.defs {
		if n == name {
			out = append(out, n)
			continue
		}
		if p.reachable(name, n, map[string]bool{}) && p.reachable(n, name, map[string]bool{}) {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}
