package objectlog

import (
	"strings"
	"testing"

	"partdiff/internal/types"
)

func TestTermBasics(t *testing.T) {
	v := V("X")
	c := CInt(5)
	if !v.IsVar || v.String() != "X" {
		t.Error("var term")
	}
	if c.IsVar || c.String() != "5" {
		t.Error("const term")
	}
	if !v.Equal(V("X")) || v.Equal(V("Y")) || v.Equal(c) {
		t.Error("term equality")
	}
	if !c.Equal(C(types.Int(5))) || c.Equal(CInt(6)) {
		t.Error("const equality")
	}
}

func TestBuiltinClassification(t *testing.T) {
	for _, n := range []string{BuiltinLT, BuiltinLE, BuiltinGT, BuiltinGE, BuiltinEQ, BuiltinNE} {
		if !IsBuiltin(n) || !IsComparison(n) || IsArithmetic(n) {
			t.Errorf("%s misclassified", n)
		}
	}
	for _, n := range []string{BuiltinPlus, BuiltinMinus, BuiltinTimes, BuiltinDiv} {
		if !IsBuiltin(n) || IsComparison(n) || !IsArithmetic(n) {
			t.Errorf("%s misclassified", n)
		}
	}
	if IsBuiltin("quantity") {
		t.Error("relation classified as builtin")
	}
}

func TestTypePred(t *testing.T) {
	p := TypePred("item")
	if p != "type:item" {
		t.Errorf("TypePred=%q", p)
	}
	name, ok := IsTypePred(p)
	if !ok || name != "item" {
		t.Error("IsTypePred roundtrip")
	}
	if _, ok := IsTypePred("quantity"); ok {
		t.Error("non-type pred recognized")
	}
}

func TestLiteralString(t *testing.T) {
	cases := []struct {
		l    Literal
		want string
	}{
		{Lit("q", V("X"), V("Y")), "q(X,Y)"},
		{NotLit("q", V("X")), "¬q(X)"},
		{Lit("q", V("X")).WithDelta(DeltaPlus), "Δ+q(X)"},
		{Lit("q", V("X")).WithDelta(DeltaMinus), "Δ-q(X)"},
		{Lit("q", V("X")).WithOld(), "q_old(X)"},
		{Lit(BuiltinLT, V("A"), V("B")), "A < B"},
		{Lit(BuiltinTimes, V("A"), V("B"), V("C")), "C = A * B"},
		{Lit(BuiltinEQ, V("A"), CInt(3)), "A = 3"},
	}
	for _, tc := range cases {
		if got := tc.l.String(); got != tc.want {
			t.Errorf("String()=%q want %q", got, tc.want)
		}
	}
}

func TestWithOldSkipsDeltaAndBuiltins(t *testing.T) {
	if Lit("q", V("X")).WithDelta(DeltaPlus).WithOld().Old {
		t.Error("delta literal must not be old-marked")
	}
	if Lit(BuiltinLT, V("A"), V("B")).WithOld().Old {
		t.Error("builtin must not be old-marked")
	}
	if !Lit("q", V("X")).WithOld().Old {
		t.Error("relation literal should be old-marked")
	}
}

func TestLiteralCopySemantics(t *testing.T) {
	orig := Lit("q", V("X"))
	d := orig.WithDelta(DeltaPlus)
	d.Args[0] = V("Y")
	if orig.Args[0].Var != "X" || orig.Delta != DeltaNone {
		t.Error("WithDelta must not share args with original")
	}
}

func TestClauseStringPaperStyle(t *testing.T) {
	// p(X,Z) ← q(X,Y) ∧ r(Y,Z)
	c := NewClause(Lit("p", V("X"), V("Z")),
		Lit("q", V("X"), V("Y")), Lit("r", V("Y"), V("Z")))
	if got := c.String(); got != "p(X,Z) ← q(X,Y) ∧ r(Y,Z)" {
		t.Errorf("Clause.String()=%q", got)
	}
	fact := NewClause(Lit("p", CInt(1)))
	if fact.String() != "p(1)" {
		t.Errorf("fact String()=%q", fact.String())
	}
}

func TestClauseVarsAndRename(t *testing.T) {
	c := NewClause(Lit("p", V("X"), V("Z")),
		Lit("q", V("X"), V("Y")), Lit("r", V("Y"), V("Z")))
	vars := c.Vars()
	if len(vars) != 3 || vars[0] != "X" || vars[1] != "Z" || vars[2] != "Y" {
		t.Errorf("Vars=%v", vars)
	}
	r := c.Rename(map[string]string{"X": "A"})
	if r.Head.Args[0].Var != "A" || r.Body[0].Args[0].Var != "A" {
		t.Error("Rename")
	}
	if c.Head.Args[0].Var != "X" {
		t.Error("Rename must not mutate original")
	}
	counter := 0
	ra := c.RenameApart(&counter)
	for _, v := range ra.Vars() {
		if !strings.HasPrefix(v, "_R") {
			t.Errorf("RenameApart left variable %s", v)
		}
	}
	counter2 := counter
	rb := c.RenameApart(&counter2)
	for _, v := range rb.Vars() {
		for _, w := range ra.Vars() {
			if v == w {
				t.Error("RenameApart reused a variable name")
			}
		}
	}
}

func TestProgramDefine(t *testing.T) {
	p := NewProgram()
	d := &Def{Name: "p", Arity: 2, Clauses: []Clause{
		NewClause(Lit("p", V("X"), V("Z")), Lit("q", V("X"), V("Z"))),
	}}
	if err := p.Define(d); err != nil {
		t.Fatal(err)
	}
	if !p.IsDerived("p") || p.IsDerived("q") {
		t.Error("IsDerived")
	}
	if _, ok := p.Def("p"); !ok {
		t.Error("Def lookup")
	}
	if err := p.Define(&Def{Name: "", Arity: 0}); err == nil {
		t.Error("unnamed def should error")
	}
	if err := p.Define(&Def{Name: "x", Arity: 1, Clauses: []Clause{
		NewClause(Lit("y", V("A")), Lit("q", V("A"))),
	}}); err == nil {
		t.Error("mismatched head pred should error")
	}
	if err := p.Define(&Def{Name: "x", Arity: 2, Clauses: []Clause{
		NewClause(Lit("x", V("A")), Lit("q", V("A"))),
	}}); err == nil {
		t.Error("mismatched head arity should error")
	}
	if names := p.Names(); len(names) != 1 || names[0] != "p" {
		t.Errorf("Names=%v", names)
	}
}

func TestDefInfluents(t *testing.T) {
	d := &Def{Name: "p", Arity: 1, Clauses: []Clause{
		NewClause(Lit("p", V("X")),
			Lit("q", V("X"), V("Y")), Lit("r", V("Y")), Lit(BuiltinLT, V("Y"), CInt(5))),
		NewClause(Lit("p", V("X")), Lit("s", V("X"))),
	}}
	infl := d.Influents()
	if len(infl) != 3 || infl[0] != "q" || infl[1] != "r" || infl[2] != "s" {
		t.Errorf("Influents=%v (builtins must be excluded)", infl)
	}
}

func TestExpandSimple(t *testing.T) {
	// threshold-style: v(X,T) ← b(X,A) ∧ T = A + 1
	// top: top(X) ← q(X,Q) ∧ v(X,T) ∧ Q < T
	p := NewProgram()
	p.Define(&Def{Name: "v", Arity: 2, Clauses: []Clause{
		NewClause(Lit("v", V("X"), V("T")),
			Lit("b", V("X"), V("A")),
			Lit(BuiltinPlus, V("A"), CInt(1), V("T"))),
	}})
	top := NewClause(Lit("top", V("I")),
		Lit("q", V("I"), V("Q")),
		Lit("v", V("I"), V("T")),
		Lit(BuiltinLT, V("Q"), V("T")))
	out, err := Expand(top, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("expanded to %d clauses", len(out))
	}
	c := out[0]
	if len(c.Body) != 4 {
		t.Fatalf("expanded body: %s", c)
	}
	// v literal replaced by b + plus, with I and T flowing through.
	if c.Body[1].Pred != "b" || c.Body[1].Args[0].Var != "I" {
		t.Errorf("expanded clause: %s", c)
	}
	if c.Body[2].Pred != BuiltinPlus || c.Body[2].Args[2].Var != "T" {
		t.Errorf("expanded clause: %s", c)
	}
}

func TestExpandDisjunctionGivesDNF(t *testing.T) {
	p := NewProgram()
	p.Define(&Def{Name: "d", Arity: 1, Clauses: []Clause{
		NewClause(Lit("d", V("X")), Lit("a", V("X"))),
		NewClause(Lit("d", V("X")), Lit("b", V("X"))),
	}})
	top := NewClause(Lit("t", V("Y")), Lit("d", V("Y")), Lit("c", V("Y")))
	out, err := Expand(top, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("want 2 disjuncts, got %d", len(out))
	}
	if out[0].Body[0].Pred != "a" || out[1].Body[0].Pred != "b" {
		t.Errorf("DNF: %s | %s", out[0], out[1])
	}
}

func TestExpandNested(t *testing.T) {
	p := NewProgram()
	p.Define(&Def{Name: "inner", Arity: 1, Clauses: []Clause{
		NewClause(Lit("inner", V("X")), Lit("base", V("X"))),
	}})
	p.Define(&Def{Name: "outer", Arity: 1, Clauses: []Clause{
		NewClause(Lit("outer", V("X")), Lit("inner", V("X"))),
	}})
	top := NewClause(Lit("t", V("Y")), Lit("outer", V("Y")))
	out, err := Expand(top, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Body[0].Pred != "base" {
		t.Errorf("nested expansion: %v", out)
	}
}

func TestExpandStopSetForNodeSharing(t *testing.T) {
	p := NewProgram()
	p.Define(&Def{Name: "shared", Arity: 1, Clauses: []Clause{
		NewClause(Lit("shared", V("X")), Lit("base", V("X"))),
	}})
	top := NewClause(Lit("t", V("Y")), Lit("shared", V("Y")))
	out, err := Expand(top, p, map[string]bool{"shared": true})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Body[0].Pred != "shared" {
		t.Errorf("stop set ignored: %v", out)
	}
}

func TestExpandSkipsNegatedDeltaOld(t *testing.T) {
	p := NewProgram()
	p.Define(&Def{Name: "d", Arity: 1, Clauses: []Clause{
		NewClause(Lit("d", V("X")), Lit("a", V("X"))),
	}})
	top := NewClause(Lit("t", V("Y")),
		Lit("base", V("Y")),
		NotLit("d", V("Y")),
		Lit("d", V("Y")).WithDelta(DeltaPlus),
		Lit("d", V("Y")).WithOld())
	out, err := Expand(top, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatal("should not multiply")
	}
	c := out[0]
	if !c.Body[1].Negated || c.Body[2].Delta != DeltaPlus || !c.Body[3].Old {
		t.Errorf("annotated literals must not be expanded: %s", c)
	}
}

func TestExpandLeavesRecursiveViewsUnexpanded(t *testing.T) {
	p := NewProgram()
	p.Define(&Def{Name: "r", Arity: 1, Clauses: []Clause{
		NewClause(Lit("r", V("X")), Lit("base", V("X"))),
		NewClause(Lit("r", V("X")), Lit("r", V("X"))),
	}})
	top := NewClause(Lit("t", V("Y")), Lit("r", V("Y")))
	out, err := Expand(top, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Body[0].Pred != "r" {
		t.Errorf("recursive view must stay unexpanded: %v", out)
	}
}

func TestIsRecursiveAndComponent(t *testing.T) {
	p := NewProgram()
	p.Define(&Def{Name: "path", Arity: 2, Clauses: []Clause{
		NewClause(Lit("path", V("X"), V("Y")), Lit("edge", V("X"), V("Y"))),
		NewClause(Lit("path", V("X"), V("Z")),
			Lit("edge", V("X"), V("Y")), Lit("path", V("Y"), V("Z"))),
	}})
	p.Define(&Def{Name: "flat", Arity: 1, Clauses: []Clause{
		NewClause(Lit("flat", V("X")), Lit("edge", V("X"), V("X"))),
	}})
	// Mutually recursive pair.
	p.Define(&Def{Name: "a", Arity: 1, Clauses: []Clause{
		NewClause(Lit("a", V("X")), Lit("b", V("X"))),
	}})
	p.Define(&Def{Name: "b", Arity: 1, Clauses: []Clause{
		NewClause(Lit("b", V("X")), Lit("a", V("X"))),
		NewClause(Lit("b", V("X")), Lit("seed", V("X"))),
	}})
	if !p.IsRecursive("path") || p.IsRecursive("flat") {
		t.Error("IsRecursive")
	}
	if !p.IsRecursive("a") || !p.IsRecursive("b") {
		t.Error("mutual recursion not detected")
	}
	if c := p.Component("path"); len(c) != 1 || c[0] != "path" {
		t.Errorf("Component(path)=%v", c)
	}
	if c := p.Component("a"); len(c) != 2 || c[0] != "a" || c[1] != "b" {
		t.Errorf("Component(a)=%v", c)
	}
	if c := p.Component("flat"); c != nil {
		t.Errorf("Component(flat)=%v", c)
	}
}

func TestExpandConstantUnification(t *testing.T) {
	p := NewProgram()
	p.Define(&Def{Name: "d", Arity: 2, Clauses: []Clause{
		NewClause(Lit("d", V("X"), CInt(1)), Lit("a", V("X"))),
		NewClause(Lit("d", V("X"), CInt(2)), Lit("b", V("X"))),
	}})
	// Call with second arg = 1: only the first disjunct survives.
	top := NewClause(Lit("t", V("Y")), Lit("d", V("Y"), CInt(1)))
	out, err := Expand(top, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Body[0].Pred != "a" {
		t.Errorf("constant pruning: %v", out)
	}
	// Call with a variable: both disjuncts, each binding the variable.
	top2 := NewClause(Lit("t", V("Y"), V("K")), Lit("d", V("Y"), V("K")))
	out2, err := Expand(top2, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out2) != 2 {
		t.Fatalf("want 2 disjuncts, got %d", len(out2))
	}
	// Each must carry an eq(K, const) literal.
	for i, c := range out2 {
		found := false
		for _, l := range c.Body {
			if l.Pred == BuiltinEQ && l.Args[0].Var == "K" {
				found = true
			}
		}
		if !found {
			t.Errorf("disjunct %d missing K binding: %s", i, c)
		}
	}
}

func TestExpandRepeatedHeadVariable(t *testing.T) {
	p := NewProgram()
	// same(X,X) ← a(X)
	p.Define(&Def{Name: "same", Arity: 2, Clauses: []Clause{
		NewClause(Lit("same", V("X"), V("X")), Lit("a", V("X"))),
	}})
	top := NewClause(Lit("t", V("Y"), V("Z")), Lit("same", V("Y"), V("Z")))
	out, err := Expand(top, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatal("one clause expected")
	}
	// Must contain an equality tying Y and Z.
	found := false
	for _, l := range out[0].Body {
		if l.Pred == BuiltinEQ {
			found = true
		}
	}
	if !found {
		t.Errorf("repeated head var needs eq: %s", out[0])
	}
}

func TestCheckSafe(t *testing.T) {
	ok := NewClause(Lit("p", V("X"), V("T")),
		Lit("q", V("X"), V("A")),
		Lit(BuiltinPlus, V("A"), CInt(1), V("T")),
		Lit(BuiltinLT, V("A"), V("T")))
	if err := CheckSafe(ok); err != nil {
		t.Errorf("safe clause rejected: %v", err)
	}
	// Head variable never bound.
	bad := NewClause(Lit("p", V("X"), V("Y")), Lit("q", V("X"), V("A")))
	if err := CheckSafe(bad); err == nil {
		t.Error("unbound head var accepted")
	}
	// Negated literal with unbound variable.
	bad2 := NewClause(Lit("p", V("X")),
		Lit("q", V("X"), V("A")), NotLit("r", V("Z")))
	if err := CheckSafe(bad2); err == nil {
		t.Error("unsafe negation accepted")
	}
	// Comparison on unbound variable.
	bad3 := NewClause(Lit("p", V("X")),
		Lit("q", V("X"), V("A")), Lit(BuiltinLT, V("A"), V("Z")))
	if err := CheckSafe(bad3); err == nil {
		t.Error("comparison on unbound var accepted")
	}
	// eq chain binding: X bound by q, Y bound via eq, head uses Y.
	okEq := NewClause(Lit("p", V("Y")),
		Lit("q", V("X")), Lit(BuiltinEQ, V("Y"), V("X")))
	if err := CheckSafe(okEq); err != nil {
		t.Errorf("eq-bound clause rejected: %v", err)
	}
	// Arithmetic with unbound input.
	bad4 := NewClause(Lit("p", V("T")),
		Lit("q", V("A")), Lit(BuiltinPlus, V("A"), V("B"), V("T")))
	if err := CheckSafe(bad4); err == nil {
		t.Error("arithmetic with unbound input accepted")
	}
	// Delta literals bind their variables too.
	okDelta := NewClause(Lit("p", V("X")), Lit("q", V("X")).WithDelta(DeltaPlus))
	if err := CheckSafe(okDelta); err != nil {
		t.Errorf("delta-bound clause rejected: %v", err)
	}
}

func TestDeltaKindString(t *testing.T) {
	if DeltaNone.String() != "" || DeltaPlus.String() != "Δ+" || DeltaMinus.String() != "Δ-" {
		t.Error("DeltaKind strings")
	}
}
