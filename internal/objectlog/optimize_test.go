package objectlog

import (
	"testing"

	"partdiff/internal/types"
)

func TestSimplifyEqConstantSubstitution(t *testing.T) {
	// h(X) ← q(X,Y) ∧ Y = 5  ⇒  h(X) ← q(X,5)
	c := NewClause(Lit("h", V("X")),
		Lit("q", V("X"), V("Y")),
		Lit(BuiltinEQ, V("Y"), CInt(5)))
	s, ok := Simplify(c)
	if !ok {
		t.Fatal("statically empty?")
	}
	if s.String() != "h(X) ← q(X,5)" {
		t.Errorf("got %s", s)
	}
	// Constant on the left works too.
	c2 := NewClause(Lit("h", V("X")),
		Lit("q", V("X"), V("Y")),
		Lit(BuiltinEQ, CInt(5), V("Y")))
	s2, _ := Simplify(c2)
	if s2.String() != "h(X) ← q(X,5)" {
		t.Errorf("got %s", s2)
	}
}

func TestSimplifyEqVariableAliasing(t *testing.T) {
	// h(Y) ← q(X) ∧ Y = X  ⇒  h(X) ← q(X)
	c := NewClause(Lit("h", V("Y")),
		Lit("q", V("X")),
		Lit(BuiltinEQ, V("X"), V("Y")))
	s, ok := Simplify(c)
	if !ok || len(s.Body) != 1 {
		t.Fatalf("got %s", s)
	}
	if !s.Head.Args[0].Equal(s.Body[0].Args[0]) {
		t.Errorf("aliasing lost: %s", s)
	}
	// eq(X,X) is just dropped.
	c2 := NewClause(Lit("h", V("X")), Lit("q", V("X")), Lit(BuiltinEQ, V("X"), V("X")))
	s2, ok := Simplify(c2)
	if !ok || len(s2.Body) != 1 {
		t.Errorf("got %s", s2)
	}
}

func TestSimplifyConstantArithmetic(t *testing.T) {
	// h(T) ← q(X) ∧ T = 2 * 3 ∧ X < T  ⇒  h(6) ← q(X) ∧ X < 6
	c := NewClause(Lit("h", V("T")),
		Lit("q", V("X")),
		Lit(BuiltinTimes, CInt(2), CInt(3), V("T")),
		Lit(BuiltinLT, V("X"), V("T")))
	s, ok := Simplify(c)
	if !ok {
		t.Fatal("empty?")
	}
	if s.String() != "h(6) ← q(X) ∧ X < 6" {
		t.Errorf("got %s", s)
	}
	// Chained folding: A = 1+1, B = A*3 folds completely.
	c2 := NewClause(Lit("h", V("B")),
		Lit(BuiltinPlus, CInt(1), CInt(1), V("A")),
		Lit(BuiltinTimes, V("A"), CInt(3), V("B")))
	s2, ok := Simplify(c2)
	if !ok || len(s2.Body) != 0 || !s2.Head.Args[0].Const.Equal(types.Int(6)) {
		t.Errorf("got %s", s2)
	}
}

func TestSimplifyDecidesConstantComparisons(t *testing.T) {
	// True comparison disappears.
	c := NewClause(Lit("h", V("X")), Lit("q", V("X")), Lit(BuiltinLT, CInt(1), CInt(2)))
	s, ok := Simplify(c)
	if !ok || len(s.Body) != 1 {
		t.Errorf("got %s ok=%v", s, ok)
	}
	// False comparison empties the clause.
	c2 := NewClause(Lit("h", V("X")), Lit("q", V("X")), Lit(BuiltinGE, CInt(1), CInt(2)))
	if _, ok := Simplify(c2); ok {
		t.Error("statically false clause survived")
	}
	// Constant eq mismatch empties.
	c3 := NewClause(Lit("h", V("X")), Lit("q", V("X")), Lit(BuiltinEQ, CInt(1), CInt(2)))
	if _, ok := Simplify(c3); ok {
		t.Error("1=2 survived")
	}
	// Constant arithmetic mismatch empties.
	c4 := NewClause(Lit("h", V("X")), Lit("q", V("X")),
		Lit(BuiltinPlus, CInt(1), CInt(1), CInt(3)))
	if _, ok := Simplify(c4); ok {
		t.Error("1+1=3 survived")
	}
	// Constant division by zero empties.
	c5 := NewClause(Lit("h", V("X")), Lit("q", V("X")),
		Lit(BuiltinDiv, CInt(1), CInt(0), V("R")))
	if _, ok := Simplify(c5); ok {
		t.Error("1/0 survived")
	}
}

func TestSimplifySubstitutesIntoNegationAndHead(t *testing.T) {
	// h(Y) ← q(X) ∧ Y = 7 ∧ ¬r(Y)  ⇒  h(7) ← q(X) ∧ ¬r(7)
	c := NewClause(Lit("h", V("Y")),
		Lit("q", V("X")),
		Lit(BuiltinEQ, V("Y"), CInt(7)),
		NotLit("r", V("Y")))
	s, ok := Simplify(c)
	if !ok {
		t.Fatal("empty?")
	}
	if s.String() != "h(7) ← q(X) ∧ ¬r(7)" {
		t.Errorf("got %s", s)
	}
}

func TestSimplifyLeavesDynamicLiteralsAlone(t *testing.T) {
	c := NewClause(Lit("h", V("X"), V("T")),
		Lit("q", V("X"), V("A")),
		Lit(BuiltinPlus, V("A"), CInt(1), V("T")),
		Lit(BuiltinLT, V("A"), V("T")))
	s, ok := Simplify(c)
	if !ok || len(s.Body) != 3 {
		t.Errorf("over-simplified: %s", s)
	}
	if s.String() != c.String() {
		t.Errorf("changed: %s vs %s", s, c)
	}
}

func TestSimplifyDoesNotMutateInput(t *testing.T) {
	c := NewClause(Lit("h", V("X")),
		Lit("q", V("X"), V("Y")),
		Lit(BuiltinEQ, V("Y"), CInt(5)))
	before := c.String()
	Simplify(c)
	if c.String() != before {
		t.Error("Simplify mutated its input")
	}
}

func TestSimplifyDef(t *testing.T) {
	d := &Def{Name: "v", Arity: 1, Clauses: []Clause{
		NewClause(Lit("v", V("X")), Lit("q", V("X")), Lit(BuiltinLT, CInt(1), CInt(2))),
		NewClause(Lit("v", V("X")), Lit("q", V("X")), Lit(BuiltinLT, CInt(2), CInt(1))),
	}}
	out := SimplifyDef(d)
	if len(out.Clauses) != 1 {
		t.Errorf("SimplifyDef kept %d clauses", len(out.Clauses))
	}
	if out.Name != "v" || out.Arity != 1 {
		t.Error("metadata lost")
	}
	// Aggregate metadata survives.
	d2 := &Def{Name: "a", Arity: 2, Aggregate: AggSum, GroupCols: 1, Clauses: d.Clauses}
	out2 := SimplifyDef(d2)
	if out2.Aggregate != AggSum || out2.GroupCols != 1 {
		t.Error("aggregate metadata lost")
	}
}

func TestSimplifyExpansionResidue(t *testing.T) {
	// The typical residue of Expand + specialization:
	// cnd(I) ← type:item(I) ∧ I = #1-as-int ∧ quantity(I,Q) ∧ Q < 140
	c := NewClause(Lit("cnd", V("I")),
		Lit("type:item", V("I")),
		Lit(BuiltinEQ, V("I"), CInt(1)),
		Lit("quantity", V("I"), V("Q")),
		Lit(BuiltinLT, V("Q"), CInt(140)))
	s, ok := Simplify(c)
	if !ok {
		t.Fatal("empty?")
	}
	if s.String() != "cnd(1) ← type:item(1) ∧ quantity(1,Q) ∧ Q < 140" {
		t.Errorf("got %s", s)
	}
}
