package objectlog

import (
	"fmt"
	"sort"
	"strings"
)

// Canonicalization renders clauses and definitions into strings in
// which alpha-equivalent structures compare equal: variables are
// renamed in first-use order and body literals are sorted (literal
// order matters for evaluation but not for set semantics). The
// renderings are used as identity keys — duplicate-disjunct detection,
// duplicate-differential grouping, and definition-analysis caching.

// CanonicalClause renders c with variables renamed in first-use order
// and the body literal renderings sorted, so alpha-equivalent clauses
// render identically.
func CanonicalClause(c Clause) string {
	return canonicalClause(c, false)
}

// CanonicalBody is CanonicalClause with the head predicate name
// anonymized, so clauses that differ only in what their head is called
// — e.g. the same rule condition compiled under two rule names —
// render identically.
func CanonicalBody(c Clause) string {
	return canonicalClause(c, true)
}

func canonicalClause(c Clause, anonHead bool) string {
	sub := map[string]string{}
	for i, v := range c.Vars() {
		sub[v] = fmt.Sprintf("_D%d", i)
	}
	canon := c.Rename(sub)
	if anonHead {
		canon.Head.Pred = "_"
	}
	lits := make([]string, len(canon.Body))
	for i, l := range canon.Body {
		lits[i] = l.String()
	}
	sort.Strings(lits)
	return canon.Head.String() + "←" + strings.Join(lits, "∧")
}

// CanonicalDef renders a whole definition: the sorted canonical
// renderings of its clauses (disjunct order is irrelevant to set
// semantics), prefixed with the aggregate marker when present. Two
// definitions with equal canonical renderings and arities are
// structurally identical, which makes the rendering a sound cache key
// for definition-time analysis.
func CanonicalDef(d *Def) string {
	cls := make([]string, len(d.Clauses))
	for i, c := range d.Clauses {
		cls[i] = CanonicalClause(c)
	}
	sort.Strings(cls)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s/%d", d.Name, d.Arity)
	if d.Aggregate != "" {
		fmt.Fprintf(&sb, "[%s/%d]", d.Aggregate, d.GroupCols)
	}
	sb.WriteByte(':')
	sb.WriteString(strings.Join(cls, "∨"))
	return sb.String()
}
