package objectlog

import (
	"fmt"
	"strings"
)

// CodeUnsafe is the diagnostic code for range-restriction (safety)
// violations. It is shared by every layer that can detect an unsafe
// clause — the static analyzer (internal/analyze), the expander, the
// differencing compiler and the evaluator — so the same defect reports
// the same code no matter where it surfaces.
const CodeUnsafe = "OL001"

// CodeUnstratifiedNegation is the diagnostic code for negation of a
// member of the predicate's own recursive component. Shared with the
// evaluator's fixpoint machinery, which re-checks it at run time.
const CodeUnstratifiedNegation = "OL002"

// CodeAnnotatedLiteral is the diagnostic code for a Δ- or old-annotated
// literal inside a user definition. Shared with the differencing
// compiler, which owns those annotations.
const CodeAnnotatedLiteral = "OL101"

// SafetyError describes one range-restriction violation of a clause:
// a variable that cannot be bound from the positive relation literals
// of the body (possibly through chains of arithmetic/eq builtins). The
// zero Var form reports a body with no evaluable literal at all (the
// evaluator's runtime manifestation of the same defect).
type SafetyError struct {
	// Var is the offending variable ("" when no literal is evaluable).
	Var string
	// Where locates the violation: "head", "negated literal ¬p(X)",
	// "comparison X < Y", "arithmetic Z = X + Y", or a body rendering.
	Where string
	// Clause is the rendered clause, when available.
	Clause string
}

// Error implements error with the shared OL001 code.
func (e *SafetyError) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "[%s] unsafe clause", CodeUnsafe)
	if e.Clause != "" {
		fmt.Fprintf(&sb, " %s", e.Clause)
	}
	if e.Var == "" {
		fmt.Fprintf(&sb, ": no evaluable literal in %s", e.Where)
	} else {
		fmt.Fprintf(&sb, ": variable %s in %s is not range restricted", e.Var, e.Where)
	}
	return sb.String()
}

// BoundVars computes the variables of a body that are bindable from
// positive relation (and delta) literals, starting from prebound (may
// be nil) and propagating through eq and arithmetic builtins to a
// fixpoint. This is the binding analysis behind safety checking; the
// static analyzer reuses it for its own passes.
func BoundVars(body []Literal, prebound map[string]bool) map[string]bool {
	bound := map[string]bool{}
	for v := range prebound {
		bound[v] = true
	}
	// Positive relation (and delta) literals bind their variables.
	for _, l := range body {
		if l.Negated || IsBuiltin(l.Pred) {
			continue
		}
		for _, a := range l.Args {
			if a.IsVar {
				bound[a.Var] = true
			}
		}
	}
	// Builtins propagate bindings to a fixpoint.
	for changed := true; changed; {
		changed = false
		for _, l := range body {
			if l.Negated || !IsBuiltin(l.Pred) {
				continue
			}
			switch {
			case IsArithmetic(l.Pred) && len(l.Args) == 3:
				if termBound(l.Args[0], bound) && termBound(l.Args[1], bound) &&
					l.Args[2].IsVar && !bound[l.Args[2].Var] {
					bound[l.Args[2].Var] = true
					changed = true
				}
			case l.Pred == BuiltinEQ && len(l.Args) == 2:
				a, b := l.Args[0], l.Args[1]
				if termBound(a, bound) && b.IsVar && !bound[b.Var] {
					bound[b.Var] = true
					changed = true
				}
				if termBound(b, bound) && a.IsVar && !bound[a.Var] {
					bound[a.Var] = true
					changed = true
				}
			}
		}
	}
	return bound
}

// SafetyViolations verifies range restriction of a conjunctive clause —
// every head variable, every variable of a negated literal, and every
// input of a builtin must be bindable from positive relation literals
// (possibly through chains of arithmetic/eq builtins) — and returns
// every violation found, in clause order. Variables listed in prebound
// (may be nil) are assumed bound at entry; rule parameters use this,
// since activation substitutes them with constants.
func SafetyViolations(c Clause, prebound map[string]bool) []*SafetyError {
	bound := BoundVars(c.Body, prebound)
	var out []*SafetyError
	seen := map[string]bool{} // one report per (var, where)
	check := func(t Term, where string) {
		if !t.IsVar || bound[t.Var] {
			return
		}
		key := t.Var + "\x00" + where
		if seen[key] {
			return
		}
		seen[key] = true
		out = append(out, &SafetyError{Var: t.Var, Where: where, Clause: c.String()})
	}
	for _, a := range c.Head.Args {
		check(a, "head")
	}
	for _, l := range c.Body {
		if l.Negated {
			for _, a := range l.Args {
				check(a, "negated literal "+l.String())
			}
		}
		if IsComparison(l.Pred) && l.Pred != BuiltinEQ {
			for _, a := range l.Args {
				check(a, "comparison "+l.String())
			}
		}
		if IsArithmetic(l.Pred) && len(l.Args) >= 2 {
			for _, a := range l.Args[:2] {
				check(a, "arithmetic "+l.String())
			}
		}
	}
	return out
}

// CheckSafeAssuming verifies range restriction with the given variables
// assumed bound at entry, returning the first violation found.
func CheckSafeAssuming(c Clause, prebound map[string]bool) error {
	if vs := SafetyViolations(c, prebound); len(vs) > 0 {
		return vs[0]
	}
	return nil
}

// CheckSafe verifies range restriction of a conjunctive clause. It
// returns an error (a *SafetyError) naming the first unsafe variable
// found.
func CheckSafe(c Clause) error {
	return CheckSafeAssuming(c, nil)
}

func termBound(t Term, bound map[string]bool) bool {
	return !t.IsVar || bound[t.Var]
}
