package objectlog

import (
	"strings"
	"testing"
)

func TestDefString(t *testing.T) {
	d := &Def{Name: "p", Arity: 1, Clauses: []Clause{
		NewClause(Lit("p", V("X")), Lit("a", V("X"))),
		NewClause(Lit("p", V("X")), Lit("b", V("X"))),
	}}
	s := d.String()
	if !strings.Contains(s, "p(X) ← a(X)") || !strings.Contains(s, "p(X) ← b(X)") {
		t.Errorf("Def.String=%q", s)
	}
	if strings.Count(s, "\n") != 1 {
		t.Errorf("one clause per line: %q", s)
	}
	agg := &Def{Name: "t", Arity: 3, Aggregate: AggSum, GroupCols: 1, Clauses: []Clause{
		NewClause(Lit("t", V("G"), V("W"), V("V")), Lit("a", V("G"), V("W"), V("V"))),
	}}
	if !strings.HasPrefix(agg.String(), "t[sum/1] ") {
		t.Errorf("aggregate Def.String=%q", agg.String())
	}
}

func TestExternalArity(t *testing.T) {
	plain := &Def{Name: "p", Arity: 3}
	if plain.ExternalArity() != 3 {
		t.Error("plain external arity")
	}
	agg := &Def{Name: "a", Arity: 4, Aggregate: AggCount, GroupCols: 2}
	if agg.ExternalArity() != 3 {
		t.Errorf("aggregate external arity = %d", agg.ExternalArity())
	}
}

func TestIsAggregateOp(t *testing.T) {
	for _, op := range []string{AggCount, AggSum, AggMin, AggMax} {
		if !IsAggregateOp(op) {
			t.Errorf("%s not recognized", op)
		}
	}
	if IsAggregateOp("avg") || IsAggregateOp("quantity") {
		t.Error("false positives")
	}
}
