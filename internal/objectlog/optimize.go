package objectlog

import "partdiff/internal/types"

// Simplify statically simplifies a conjunctive clause, as a traditional
// query rewriter would before cost-based optimization (§1: each partial
// differential "is a relatively simple database query which is
// optimized using traditional query optimization techniques"):
//
//   - eq literals unify: eq(X, c) substitutes c for X everywhere and
//     disappears; eq(X, Y) renames Y to X; eq(c, c) is removed;
//     eq(c1, c2) with different constants makes the clause empty.
//   - arithmetic over constants folds: times(2, 3, X) substitutes 6 for
//     X; a constant-vs-constant result mismatch (or division by zero)
//     makes the clause empty.
//   - comparisons over constants are decided.
//
// It returns the simplified clause; ok is false when the clause is
// statically empty (contributes no tuples).
func Simplify(c Clause) (simplified Clause, ok bool) {
	c = c.Clone()
	for {
		action, i, v, t, empty := findSimplification(c)
		if empty {
			return c, false
		}
		switch action {
		case simpNone:
			return c, true
		case simpDrop:
			c.Body = append(append([]Literal(nil), c.Body[:i]...), c.Body[i+1:]...)
		case simpSubst:
			sub := map[string]Term{v: t}
			nc := Clause{Head: c.Head.Substitute(sub)}
			for j, l := range c.Body {
				if j == i {
					continue
				}
				nc.Body = append(nc.Body, l.Substitute(sub))
			}
			c = nc
		}
	}
}

type simpAction int

const (
	simpNone simpAction = iota
	simpDrop
	simpSubst
)

// findSimplification scans for the first applicable simplification.
func findSimplification(c Clause) (action simpAction, idx int, v string, t Term, empty bool) {
	for i, l := range c.Body {
		switch {
		case l.Pred == BuiltinEQ && !l.Negated && len(l.Args) == 2:
			a, b := l.Args[0], l.Args[1]
			switch {
			case !a.IsVar && !b.IsVar:
				if !a.Const.Equal(b.Const) {
					return simpNone, 0, "", Term{}, true
				}
				return simpDrop, i, "", Term{}, false
			case a.IsVar && !b.IsVar:
				return simpSubst, i, a.Var, b, false
			case !a.IsVar && b.IsVar:
				return simpSubst, i, b.Var, a, false
			default:
				if a.Var == b.Var {
					return simpDrop, i, "", Term{}, false
				}
				return simpSubst, i, b.Var, a, false
			}
		case IsArithmetic(l.Pred) && len(l.Args) == 3 && !l.Args[0].IsVar && !l.Args[1].IsVar:
			var res types.Value
			var err error
			switch l.Pred {
			case BuiltinPlus:
				res, err = types.Add(l.Args[0].Const, l.Args[1].Const)
			case BuiltinMinus:
				res, err = types.Sub(l.Args[0].Const, l.Args[1].Const)
			case BuiltinTimes:
				res, err = types.Mul(l.Args[0].Const, l.Args[1].Const)
			default:
				res, err = types.Div(l.Args[0].Const, l.Args[1].Const)
			}
			if err != nil {
				return simpNone, 0, "", Term{}, true
			}
			r := l.Args[2]
			if !r.IsVar {
				if !r.Const.Equal(res) {
					return simpNone, 0, "", Term{}, true
				}
				return simpDrop, i, "", Term{}, false
			}
			return simpSubst, i, r.Var, C(res), false
		case IsComparison(l.Pred) && len(l.Args) == 2 && !l.Args[0].IsVar && !l.Args[1].IsVar:
			if constCmp(l.Pred, l.Args[0].Const, l.Args[1].Const) == l.Negated {
				return simpNone, 0, "", Term{}, true
			}
			return simpDrop, i, "", Term{}, false
		}
	}
	return simpNone, 0, "", Term{}, false
}

func constCmp(pred string, a, b types.Value) bool {
	switch pred {
	case BuiltinEQ:
		return a.Equal(b)
	case BuiltinNE:
		return !a.Equal(b)
	}
	cv := a.Compare(b)
	switch pred {
	case BuiltinLT:
		return cv < 0
	case BuiltinLE:
		return cv <= 0
	case BuiltinGT:
		return cv > 0
	default: // BuiltinGE
		return cv >= 0
	}
}

// SimplifyDef simplifies every clause of a definition, dropping
// statically empty disjuncts. The returned definition may have no
// clauses (statically empty view).
func SimplifyDef(d *Def) *Def {
	out := &Def{Name: d.Name, Arity: d.Arity, Aggregate: d.Aggregate, GroupCols: d.GroupCols}
	for _, c := range d.Clauses {
		if sc, ok := Simplify(c); ok {
			out.Clauses = append(out.Clauses, sc)
		}
	}
	return out
}
