package objectlog

import (
	"fmt"
)

// Expand inlines derived predicates referenced in the clause body,
// producing a set of fully expanded conjunctive clauses (the DNF of the
// original clause). This mirrors the AMOSQL compiler, which "expands as
// many derived relations as possible to have more degrees of freedom for
// optimizations" (§4.3).
//
// Only positive, current-state, non-delta literals are expanded; negated
// literals are evaluated as subqueries, and delta/old literals refer to
// runtime wave-front sets. stop contains predicate names that must not
// be expanded even if derived — this is how node sharing (§7.1) keeps a
// shared subview (e.g. threshold) as an intermediate network node.
func Expand(c Clause, p *Program, stop map[string]bool) ([]Clause, error) {
	// Seed the fresh-variable counter past any _R<n> names already in
	// the clause (e.g. introduced by an earlier RenameApart), so
	// expansion cannot capture them.
	counter := maxRenameIndex(c.Vars())
	return expand(c, p, stop, nil, &counter)
}

// maxRenameIndex returns the largest n such that some variable is named
// _R<n>, or 0.
func maxRenameIndex(vars []string) int {
	max := 0
	for _, v := range vars {
		if len(v) < 3 || v[0] != '_' || v[1] != 'R' {
			continue
		}
		n := 0
		ok := true
		for i := 2; i < len(v); i++ {
			d := v[i]
			if d < '0' || d > '9' {
				ok = false
				break
			}
			n = n*10 + int(d-'0')
		}
		if ok && n > max {
			max = n
		}
	}
	return max
}

func expand(c Clause, p *Program, stop map[string]bool, stack []string, counter *int) ([]Clause, error) {
	// Find the first expandable literal.
	idx := -1
	for i, l := range c.Body {
		if l.Negated || l.Delta != DeltaNone || l.Old || IsBuiltin(l.Pred) {
			continue
		}
		if stop[l.Pred] {
			continue
		}
		if d, ok := p.Def(l.Pred); ok && d.Aggregate == "" && !p.IsRecursive(l.Pred) {
			// Aggregate and recursive views are never inlined: they
			// become intermediate (re-evaluated) network nodes.
			idx = i
			break
		}
	}
	if idx < 0 {
		return []Clause{c}, nil
	}
	call := c.Body[idx]
	for _, s := range stack {
		if s == call.Pred {
			return nil, fmt.Errorf("recursive predicate %q cannot be expanded (recursion is outside the scope of the calculus)", call.Pred)
		}
	}
	def, _ := p.Def(call.Pred)
	if len(call.Args) != def.Arity {
		return nil, fmt.Errorf("call to %q with arity %d, defined with %d", call.Pred, len(call.Args), def.Arity)
	}
	var out []Clause
	for _, dc := range def.Clauses {
		fresh := dc.RenameApart(counter)
		body, ok, err := inlineBody(fresh, call)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue // constant mismatch: this disjunct contributes nothing
		}
		nc := Clause{Head: c.Head}
		nc.Body = append(nc.Body, c.Body[:idx]...)
		nc.Body = append(nc.Body, body...)
		nc.Body = append(nc.Body, c.Body[idx+1:]...)
		sub, err := expand(nc, p, stop, append(stack, call.Pred), counter)
		if err != nil {
			return nil, err
		}
		out = append(out, sub...)
	}
	return out, nil
}

// inlineBody unifies the (renamed-apart) definition clause head with the
// call literal and returns the substituted body. ok is false when two
// constants conflict (the disjunct is statically empty).
func inlineBody(def Clause, call Literal) ([]Literal, bool, error) {
	sub := map[string]Term{}
	var extra []Literal
	for i, ha := range def.Head.Args {
		ca := call.Args[i]
		switch {
		case ha.IsVar:
			if prev, ok := sub[ha.Var]; ok {
				// Head repeats a variable: the two call terms must agree.
				extra = append(extra, Lit(BuiltinEQ, prev, ca))
			} else {
				sub[ha.Var] = ca
			}
		case ca.IsVar:
			// Head constant, call variable: bind the call variable.
			extra = append(extra, Lit(BuiltinEQ, ca, C(ha.Const)))
		default:
			if !ha.Const.Equal(ca.Const) {
				return nil, false, nil
			}
		}
	}
	body := make([]Literal, 0, len(def.Body)+len(extra))
	for _, l := range def.Body {
		body = append(body, l.Substitute(sub))
	}
	body = append(body, extra...)
	return body, true, nil
}
