package catalog

import (
	"testing"

	"partdiff/internal/types"
)

func TestCreateTypeAndHierarchy(t *testing.T) {
	c := New()
	if _, err := c.CreateType("item", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateType("item", ""); err == nil {
		t.Error("duplicate type should error")
	}
	if _, err := c.CreateType("integer", ""); err == nil {
		t.Error("redefining scalar type should error")
	}
	if _, err := c.CreateType("perishable", "item"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateType("x", "nosuch"); err == nil {
		t.Error("unknown supertype should error")
	}
	p, _ := c.Type("perishable")
	if !p.IsSubtypeOf("item") || !p.IsSubtypeOf("perishable") || !p.IsSubtypeOf("object") {
		t.Error("subtype relation")
	}
	it, _ := c.Type("item")
	if it.IsSubtypeOf("perishable") {
		t.Error("supertype is not a subtype")
	}
	names := c.TypeNames()
	if len(names) != 2 || names[0] != "item" || names[1] != "perishable" {
		t.Errorf("TypeNames=%v", names)
	}
}

func TestMultipleInheritance(t *testing.T) {
	c := New()
	c.CreateType("car", "")
	c.CreateType("boat", "")
	amp, err := c.CreateType("amphibious", "car", "boat")
	if err != nil {
		t.Fatal(err)
	}
	if !amp.IsSubtypeOf("car") || !amp.IsSubtypeOf("boat") || !amp.IsSubtypeOf("object") {
		t.Error("multi-supertype subtyping")
	}
	if amp.Super() == nil || amp.Super().Name != "car" {
		t.Error("Super() convenience")
	}
	if _, err := c.CreateType("bad", "car", "car"); err == nil {
		t.Error("duplicate supertype accepted")
	}
	if _, err := c.CreateType("bad2", "nosuch"); err == nil {
		t.Error("unknown supertype accepted")
	}
	// Diamond: AllSupertypes visits the shared root once.
	c.CreateType("vehicle", "")
	c2 := New()
	c2.CreateType("vehicle", "")
	c2.CreateType("car", "vehicle")
	c2.CreateType("boat", "vehicle")
	d, _ := c2.CreateType("duck", "car", "boat")
	sups := d.AllSupertypes()
	if len(sups) != 4 {
		t.Errorf("AllSupertypes visited %d types", len(sups))
	}
	oid, _ := c2.NewObject("duck")
	if !c2.IsInstanceOf(oid, "vehicle") {
		t.Error("diamond instance-of")
	}
	if c2.ExtentSize("vehicle") != 1 {
		t.Errorf("diamond extent size %d", c2.ExtentSize("vehicle"))
	}
	var nilType *Type
	if nilType.IsSubtypeOf("car") || !nilType.IsSubtypeOf("object") {
		t.Error("nil type subtyping")
	}
}

func TestObjectsAndExtents(t *testing.T) {
	c := New()
	c.CreateType("item", "")
	c.CreateType("perishable", "item")
	i1, err := c.NewObject("item")
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := c.NewObject("perishable")
	if i1 == p1 {
		t.Error("OIDs must be unique")
	}
	if _, err := c.NewObject("nosuch"); err == nil {
		t.Error("NewObject on unknown type should error")
	}
	if tn, _ := c.ObjectType(p1); tn != "perishable" {
		t.Errorf("ObjectType=%q", tn)
	}
	if !c.IsInstanceOf(p1, "item") || !c.IsInstanceOf(i1, "item") {
		t.Error("IsInstanceOf with subtyping")
	}
	if c.IsInstanceOf(i1, "perishable") {
		t.Error("supertype instance is not subtype instance")
	}
	ext := c.Extent("item")
	if len(ext) != 2 {
		t.Errorf("Extent(item)=%v, want both instances (subtype included)", ext)
	}
	if c.ExtentSize("perishable") != 1 {
		t.Error("ExtentSize(perishable)")
	}
	if err := c.DeleteObject(i1); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteObject(i1); err == nil {
		t.Error("double delete should error")
	}
	if c.ExtentSize("item") != 1 {
		t.Error("extent after delete")
	}
	if _, ok := c.ObjectType(i1); ok {
		t.Error("deleted object should have no type")
	}
}

func TestDeclareFunctionValidation(t *testing.T) {
	c := New()
	c.CreateType("item", "")
	ok := &Function{
		Name:    "quantity",
		Kind:    Stored,
		Params:  []Param{{Name: "i", Type: "item"}},
		Results: []string{TypeInteger},
	}
	if err := c.DeclareFunction(ok); err != nil {
		t.Fatal(err)
	}
	if err := c.DeclareFunction(ok); err == nil {
		t.Error("duplicate function should error")
	}
	if err := c.DeclareFunction(&Function{Name: "", Kind: Stored}); err == nil {
		t.Error("unnamed function should error")
	}
	if err := c.DeclareFunction(&Function{
		Name: "bad", Kind: Stored,
		Params: []Param{{Type: "nosuch"}}, Results: []string{TypeInteger},
	}); err == nil {
		t.Error("unknown param type should error")
	}
	if err := c.DeclareFunction(&Function{
		Name: "bad2", Kind: Stored, Results: []string{"nosuch"},
	}); err == nil {
		t.Error("unknown result type should error")
	}
	if err := c.DeclareFunction(&Function{Name: "f", Kind: Foreign}); err == nil {
		t.Error("foreign function without implementation should error")
	}
	f, found := c.Function("quantity")
	if !found || f.Arity() != 2 {
		t.Error("Function lookup / arity")
	}
	if cols := f.KeyCols(); len(cols) != 1 || cols[0] != 0 {
		t.Errorf("KeyCols=%v", cols)
	}
	if ct := f.ColumnTypes(); len(ct) != 2 || ct[0] != "item" || ct[1] != TypeInteger {
		t.Errorf("ColumnTypes=%v", ct)
	}
}

func TestSetBody(t *testing.T) {
	c := New()
	c.DeclareFunction(&Function{Name: "v", Kind: Derived, Results: []string{TypeInteger}})
	c.DeclareFunction(&Function{Name: "s", Kind: Stored, Results: []string{TypeInteger}})
	if err := c.SetBody("v", "clause"); err != nil {
		t.Fatal(err)
	}
	f, _ := c.Function("v")
	if f.Body != "clause" {
		t.Error("body not set")
	}
	if err := c.SetBody("s", "x"); err == nil {
		t.Error("SetBody on stored function should error")
	}
	if err := c.SetBody("nosuch", "x"); err == nil {
		t.Error("SetBody on unknown function should error")
	}
}

func TestProcedures(t *testing.T) {
	c := New()
	called := false
	if err := c.RegisterProcedure("order", func([]types.Value) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterProcedure("bad", nil); err == nil {
		t.Error("nil procedure should error")
	}
	p, ok := c.Procedure("order")
	if !ok {
		t.Fatal("procedure not found")
	}
	p(nil)
	if !called {
		t.Error("procedure not invoked")
	}
	if _, ok := c.Procedure("nosuch"); ok {
		t.Error("unknown procedure found")
	}
}

func TestValueConformsTo(t *testing.T) {
	c := New()
	c.CreateType("item", "")
	c.CreateType("perishable", "item")
	oid, _ := c.NewObject("perishable")
	cases := []struct {
		v    types.Value
		tn   string
		want bool
	}{
		{types.Int(1), TypeInteger, true},
		{types.Float(1), TypeInteger, false},
		{types.Int(1), TypeReal, true},
		{types.Float(1.5), TypeReal, true},
		{types.Str("x"), TypeString, true},
		{types.Int(1), TypeString, false},
		{types.Bool(true), TypeBoolean, true},
		{types.Obj(oid), "item", true},
		{types.Obj(oid), "perishable", true},
		{types.Obj(9999), "item", false},
		{types.Int(1), "item", false},
	}
	for _, tc := range cases {
		if got := c.ValueConformsTo(tc.v, tc.tn); got != tc.want {
			t.Errorf("ValueConformsTo(%s,%s)=%v want %v", tc.v, tc.tn, got, tc.want)
		}
	}
}

func TestFunctionKindString(t *testing.T) {
	if Stored.String() != "stored" || Derived.String() != "derived" || Foreign.String() != "foreign" {
		t.Error("kind strings")
	}
}
