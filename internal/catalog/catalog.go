// Package catalog implements the schema layer of the functional data
// model used by AMOS (after Daplex and Iris): user types with single
// inheritance, object instances identified by OIDs, and functions that
// are stored (base relations / object attributes), derived (views /
// methods), or foreign (procedural, here: Go functions).
package catalog

import (
	"fmt"
	"sort"
	"sync"

	"partdiff/internal/types"
)

// Builtin scalar type names. User types are everything else.
const (
	TypeInteger = "integer"
	TypeReal    = "real"
	TypeString  = "charstring"
	TypeBoolean = "boolean"
)

// IsScalarType reports whether name denotes a builtin scalar type.
func IsScalarType(name string) bool {
	switch name {
	case TypeInteger, TypeReal, TypeString, TypeBoolean:
		return true
	}
	return false
}

// Type is a user-defined object type. Types form an inheritance DAG
// rooted at the implicit type "object" — as in the Iris data model, a
// type may have several supertypes and an object belongs to one or
// several types.
type Type struct {
	Name   string
	Supers []*Type // empty for roots
}

// Super returns the first supertype (nil for roots) — a convenience
// for the common single-inheritance case.
func (t *Type) Super() *Type {
	if len(t.Supers) == 0 {
		return nil
	}
	return t.Supers[0]
}

// IsSubtypeOf reports whether t is name or a (transitive) subtype of it.
func (t *Type) IsSubtypeOf(name string) bool {
	if name == "object" {
		return true
	}
	if t == nil {
		return false
	}
	if t.Name == name {
		return true
	}
	for _, s := range t.Supers {
		if s.IsSubtypeOf(name) {
			return true
		}
	}
	return false
}

// AllSupertypes returns t and every (transitive) supertype, each once.
func (t *Type) AllSupertypes() []*Type {
	seen := map[string]bool{}
	var out []*Type
	var walk func(*Type)
	walk = func(x *Type) {
		if x == nil || seen[x.Name] {
			return
		}
		seen[x.Name] = true
		out = append(out, x)
		for _, s := range x.Supers {
			walk(s)
		}
	}
	walk(t)
	return out
}

// FunctionKind classifies a function.
type FunctionKind int

// The function kinds of the AMOS data model.
const (
	// Stored functions equal object attributes or base tables.
	Stored FunctionKind = iota
	// Derived functions equal methods or relational views.
	Derived
	// Foreign functions are written in a procedural language (here Go).
	Foreign
)

// String returns the kind name.
func (k FunctionKind) String() string {
	switch k {
	case Stored:
		return "stored"
	case Derived:
		return "derived"
	case Foreign:
		return "foreign"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ForeignFunc computes the set of result tuples for fully bound
// arguments. Each inner slice is one result row of the function's result
// arity (usually 1).
type ForeignFunc func(args []types.Value) ([][]types.Value, error)

// Procedure is a foreign procedure with side effects, usable as a rule
// action.
type Procedure func(args []types.Value) error

// Param is one formal parameter of a function.
type Param struct {
	Name string // may be empty for unnamed parameters
	Type string // type name (scalar or user type)
}

// Function is a schema-level function f(a1,...,an) -> (r1,...,rm).
// As a relation it has arity n+m with the argument columns first.
type Function struct {
	Name    string
	Kind    FunctionKind
	Params  []Param
	Results []string // result type names (usually one)

	// Body is the unexpanded definition of a derived function, owned by
	// the query compiler (an ObjectLog clause set). It is opaque to the
	// catalog to keep the schema layer dependency-free.
	Body any

	// Fn is the implementation of a foreign function.
	Fn ForeignFunc
}

// Arity is the relational arity (arguments + results).
func (f *Function) Arity() int { return len(f.Params) + len(f.Results) }

// KeyCols returns the argument column indexes (0..len(Params)-1); stored
// functions are keyed on their arguments (`set` replaces the result for a
// given argument binding).
func (f *Function) KeyCols() []int {
	cols := make([]int, len(f.Params))
	for i := range cols {
		cols[i] = i
	}
	return cols
}

// ColumnTypes returns the type names of all relational columns.
func (f *Function) ColumnTypes() []string {
	out := make([]string, 0, f.Arity())
	for _, p := range f.Params {
		out = append(out, p.Type)
	}
	return append(out, f.Results...)
}

// Catalog is the schema registry: types, their instances, and functions.
// It is safe for concurrent use.
type Catalog struct {
	mu      sync.RWMutex
	types   map[string]*Type
	funcs   map[string]*Function
	procs   map[string]Procedure
	nextOID types.OID
	extent  map[string]map[types.OID]bool // type name -> direct instances
	objType map[types.OID]string          // oid -> direct type name
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		types:   make(map[string]*Type),
		funcs:   make(map[string]*Function),
		procs:   make(map[string]Procedure),
		nextOID: 1,
		extent:  make(map[string]map[types.OID]bool),
		objType: make(map[types.OID]string),
	}
}

// CreateType defines a new user type, optionally under one or several
// supertypes.
func (c *Catalog) CreateType(name string, supers ...string) (*Type, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if IsScalarType(name) {
		return nil, fmt.Errorf("type %q: cannot redefine builtin scalar type", name)
	}
	if _, ok := c.types[name]; ok {
		return nil, fmt.Errorf("type %q already exists", name)
	}
	var sups []*Type
	seen := map[string]bool{}
	for _, super := range supers {
		if super == "" {
			continue
		}
		if seen[super] {
			return nil, fmt.Errorf("supertype %q listed twice", super)
		}
		seen[super] = true
		sup, ok := c.types[super]
		if !ok {
			return nil, fmt.Errorf("supertype %q does not exist", super)
		}
		sups = append(sups, sup)
	}
	t := &Type{Name: name, Supers: sups}
	c.types[name] = t
	c.extent[name] = make(map[types.OID]bool)
	return t, nil
}

// Type looks up a user type by name.
func (c *Catalog) Type(name string) (*Type, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.types[name]
	return t, ok
}

// TypeNames returns the user type names in sorted order.
func (c *Catalog) TypeNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.types))
	for n := range c.types {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NewObject allocates a fresh instance of the named type and returns its
// OID.
func (c *Catalog) NewObject(typeName string) (types.OID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.types[typeName]; !ok {
		return 0, fmt.Errorf("type %q does not exist", typeName)
	}
	oid := c.nextOID
	c.nextOID++
	c.extent[typeName][oid] = true
	c.objType[oid] = typeName
	return oid, nil
}

// RestoreObject re-creates an object with an explicit OID — the
// recovery path, replaying object births from a snapshot or the
// write-ahead log. The OID allocator is bumped past the restored OID so
// later NewObject calls cannot collide.
func (c *Catalog) RestoreObject(oid types.OID, typeName string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.types[typeName]; !ok {
		return fmt.Errorf("type %q does not exist", typeName)
	}
	if have, ok := c.objType[oid]; ok {
		if have != typeName {
			return fmt.Errorf("object #%d already exists with type %s", uint64(oid), have)
		}
		return nil
	}
	c.extent[typeName][oid] = true
	c.objType[oid] = typeName
	if oid >= c.nextOID {
		c.nextOID = oid + 1
	}
	return nil
}

// NextOID returns the next OID the allocator would hand out.
func (c *Catalog) NextOID() types.OID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.nextOID
}

// SetNextOID restores the allocator position (never backwards).
func (c *Catalog) SetNextOID(oid types.OID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if oid > c.nextOID {
		c.nextOID = oid
	}
}

// Objects returns every live object with its direct type, sorted by
// OID — the serializable object universe for snapshots.
func (c *Catalog) Objects() []ObjectRecord {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]ObjectRecord, 0, len(c.objType))
	for oid, tn := range c.objType {
		out = append(out, ObjectRecord{OID: oid, Type: tn})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].OID < out[j].OID })
	return out
}

// ObjectRecord is one entry of the serializable object universe.
type ObjectRecord struct {
	OID  types.OID
	Type string
}

// DeleteObject removes an instance from its type extent.
func (c *Catalog) DeleteObject(oid types.OID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	tn, ok := c.objType[oid]
	if !ok {
		return fmt.Errorf("object #%d does not exist", uint64(oid))
	}
	delete(c.extent[tn], oid)
	delete(c.objType, oid)
	return nil
}

// ObjectType returns the direct type name of an object.
func (c *Catalog) ObjectType(oid types.OID) (string, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	tn, ok := c.objType[oid]
	return tn, ok
}

// IsInstanceOf reports whether oid is an instance of typeName, including
// via subtyping.
func (c *Catalog) IsInstanceOf(oid types.OID, typeName string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	tn, ok := c.objType[oid]
	if !ok {
		return false
	}
	t := c.types[tn]
	return t != nil && t.IsSubtypeOf(typeName)
}

// Extent returns the OIDs of all instances of typeName, including
// instances of its subtypes, in ascending order.
func (c *Catalog) Extent(typeName string) []types.OID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []types.OID
	for tn, t := range c.types {
		if t.IsSubtypeOf(typeName) {
			for oid := range c.extent[tn] {
				out = append(out, oid)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ExtentSize returns the number of instances of typeName (with subtypes).
func (c *Catalog) ExtentSize(typeName string) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := 0
	for tn, t := range c.types {
		if t.IsSubtypeOf(typeName) {
			n += len(c.extent[tn])
		}
	}
	return n
}

// DeclareFunction registers a function. For stored functions the backing
// relation must be created separately (see internal/storage); the schema
// layers are kept decoupled.
func (c *Catalog) DeclareFunction(f *Function) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f.Name == "" {
		return fmt.Errorf("function must have a name")
	}
	if _, ok := c.funcs[f.Name]; ok {
		return fmt.Errorf("function %q already exists", f.Name)
	}
	if f.Kind == Foreign && f.Fn == nil {
		return fmt.Errorf("foreign function %q has no implementation", f.Name)
	}
	for _, p := range f.Params {
		if err := c.checkTypeLocked(p.Type); err != nil {
			return fmt.Errorf("function %q: %w", f.Name, err)
		}
	}
	for _, r := range f.Results {
		if err := c.checkTypeLocked(r); err != nil {
			return fmt.Errorf("function %q: %w", f.Name, err)
		}
	}
	c.funcs[f.Name] = f
	return nil
}

func (c *Catalog) checkTypeLocked(name string) error {
	if IsScalarType(name) {
		return nil
	}
	if _, ok := c.types[name]; !ok {
		return fmt.Errorf("unknown type %q", name)
	}
	return nil
}

// Function looks up a function by name.
func (c *Catalog) Function(name string) (*Function, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	f, ok := c.funcs[name]
	return f, ok
}

// FunctionNames returns all function names in sorted order.
func (c *Catalog) FunctionNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.funcs))
	for n := range c.funcs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SetBody attaches the compiled definition of a derived function.
func (c *Catalog) SetBody(name string, body any) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.funcs[name]
	if !ok {
		return fmt.Errorf("function %q does not exist", name)
	}
	if f.Kind != Derived {
		return fmt.Errorf("function %q is %s, not derived", name, f.Kind)
	}
	f.Body = body
	return nil
}

// RegisterProcedure registers a named foreign procedure (usable in rule
// actions).
func (c *Catalog) RegisterProcedure(name string, p Procedure) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p == nil {
		return fmt.Errorf("procedure %q is nil", name)
	}
	c.procs[name] = p
	return nil
}

// Procedure looks up a foreign procedure by name.
func (c *Catalog) Procedure(name string) (Procedure, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	p, ok := c.procs[name]
	return p, ok
}

// ValueConformsTo reports whether a runtime value is acceptable for a
// column declared with the given type name (used for cheap dynamic
// checking at update time).
func (c *Catalog) ValueConformsTo(v types.Value, typeName string) bool {
	switch typeName {
	case TypeInteger:
		return v.Kind == types.KindInt
	case TypeReal:
		return v.IsNumeric()
	case TypeString:
		return v.Kind == types.KindString
	case TypeBoolean:
		return v.Kind == types.KindBool
	default:
		return v.Kind == types.KindObject && c.IsInstanceOf(v.O, typeName)
	}
}
