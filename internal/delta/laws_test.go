package delta

import (
	"math/rand"
	"testing"
	"testing/quick"

	"partdiff/internal/types"
)

// Algebraic laws of the Δ-set calculus, beyond the paper's formulas.

func randDelta(r *rand.Rand) *Set {
	d := New()
	for i := 0; i < r.Intn(12); i++ {
		v := tup(int64(r.Intn(10)))
		if r.Intn(2) == 0 {
			d.Insert(v)
		} else {
			d.Delete(v)
		}
	}
	return d
}

// Law: the empty Δ-set is a two-sided identity for ∪Δ.
func TestUnionIdentity_Quick(t *testing.T) {
	f := func(seed int64) bool {
		d := randDelta(rand.New(rand.NewSource(seed)))
		return Union(d, New()).Equal(d) && Union(New(), d).Equal(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Law: ∪Δ preserves the disjointness invariant Δ+ ∩ Δ− = ∅.
func TestUnionPreservesDisjointness_Quick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		u := Union(randDelta(r), randDelta(r))
		ok := true
		u.Plus().Each(func(tp types.Tuple) bool {
			if u.Minus().Contains(tp) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Law: a Δ-set unioned with its own inverse cancels completely.
func TestUnionWithInverseCancels_Quick(t *testing.T) {
	f := func(seed int64) bool {
		d := randDelta(rand.New(rand.NewSource(seed)))
		return Union(d, d.Invert()).IsEmpty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Law: Diff(OldState(S), S) recovers the net delta restricted to
// tuples whose membership actually changed — i.e. exactly the Δ-set,
// provided the Δ-set is consistent with S (Δ+ ⊆ S, Δ− ∩ S = ∅).
func TestDiffRecoversConsistentDelta_Quick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		state := types.NewSet()
		d := New()
		// Build a consistent (state, delta) pair by playing events.
		for i := 0; i < 30; i++ {
			v := tup(int64(r.Intn(12)))
			if r.Intn(2) == 0 {
				if state.Add(v) {
					d.Insert(v)
				}
			} else {
				if state.Remove(v) {
					d.Delete(v)
				}
			}
		}
		return Diff(d.OldState(state), state).Equal(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Law: forward and backward state transforms are mutually inverse on
// consistent pairs.
func TestStateTransformsInverse_Quick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		state := types.NewSet()
		d := New()
		for i := 0; i < 25; i++ {
			v := tup(int64(r.Intn(10)))
			if r.Intn(2) == 0 {
				if state.Add(v) {
					d.Insert(v)
				}
			} else {
				if state.Remove(v) {
					d.Delete(v)
				}
			}
		}
		old := d.OldState(state)
		return d.NewState(old).Equal(state) && d.OldState(d.NewState(old)).Equal(old)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
