package delta

import (
	"math/rand"
	"testing"
	"testing/quick"

	"partdiff/internal/types"
)

func tup(vs ...int64) types.Tuple {
	t := make(types.Tuple, len(vs))
	for i, v := range vs {
		t[i] = types.Int(v)
	}
	return t
}

// TestDeltaUnion_NetEffect reproduces the §4.1 min_stock example: two
// updates that restore the original value leave an empty Δ-set.
func TestDeltaUnion_NetEffect(t *testing.T) {
	// set min_stock(:item1) = 150  (was 100)
	// set min_stock(:item1) = 100
	item1 := types.Obj(1)
	d := New()
	// physical events, in order:
	d.Delete(types.Tuple{item1, types.Int(100)})
	if d.String() != "<{}, {(#1, 100)}>" {
		t.Errorf("after -100: %s", d)
	}
	d.Insert(types.Tuple{item1, types.Int(150)})
	if got := d.String(); got != "<{(#1, 150)}, {(#1, 100)}>" {
		t.Errorf("after +150: %s", got)
	}
	d.Delete(types.Tuple{item1, types.Int(150)})
	if got := d.String(); got != "<{}, {(#1, 100)}>" {
		t.Errorf("after -150: %s", got)
	}
	d.Insert(types.Tuple{item1, types.Int(100)})
	if !d.IsEmpty() {
		t.Errorf("no net effect expected, got %s", d)
	}
}

func TestInsertDeleteCancel(t *testing.T) {
	d := New()
	d.Insert(tup(1))
	d.Delete(tup(1))
	if !d.IsEmpty() {
		t.Errorf("insert then delete should cancel: %s", d)
	}
	d.Delete(tup(2))
	d.Insert(tup(2))
	if !d.IsEmpty() {
		t.Errorf("delete then insert should cancel: %s", d)
	}
}

func TestDisjointnessInvariant(t *testing.T) {
	d := New()
	d.Insert(tup(1))
	d.Insert(tup(1)) // idempotent
	if d.Plus().Len() != 1 {
		t.Error("duplicate insert")
	}
	d.Delete(tup(1))
	d.Delete(tup(1))
	if d.Plus().Len() != 0 || d.Minus().Len() != 1 {
		t.Errorf("after cancel+delete: %s", d)
	}
	if d.Plus().Contains(tup(1)) && d.Minus().Contains(tup(1)) {
		t.Error("plus and minus must stay disjoint")
	}
}

func TestUnionMatchesPaperFormula(t *testing.T) {
	// ΔB1 ∪Δ ΔB2 = <(Δ+B1−Δ−B2) ∪ (Δ+B2−Δ−B1), (Δ−B1−Δ+B2) ∪ (Δ−B2−Δ+B1)>
	b1 := New()
	b1.Insert(tup(1))
	b1.Insert(tup(2))
	b1.Delete(tup(3))
	b2 := New()
	b2.Insert(tup(3)) // cancels b1's deletion
	b2.Delete(tup(2)) // cancels b1's insertion
	b2.Insert(tup(4))
	u := Union(b1, b2)
	wantPlus := types.NewSet(tup(1), tup(4))
	wantMinus := types.NewSet()
	if !u.Plus().Equal(wantPlus) || !u.Minus().Equal(wantMinus) {
		t.Errorf("Union=%s", u)
	}
	// operands untouched
	if b1.Len() != 3 || b2.Len() != 3 {
		t.Error("Union must not modify operands")
	}
}

func TestOldStateRollback(t *testing.T) {
	// S_old = (S_new ∪ Δ−S) − Δ+S
	newState := types.NewSet(tup(1), tup(2), tup(4))
	d := New()
	d.Insert(tup(4)) // added during txn
	d.Delete(tup(3)) // removed during txn
	old := d.OldState(newState)
	want := types.NewSet(tup(1), tup(2), tup(3))
	if !old.Equal(want) {
		t.Errorf("OldState=%s want %s", old, want)
	}
	// Forward application returns new state.
	if !d.NewState(old).Equal(newState) {
		t.Error("NewState(OldState(s)) != s")
	}
	// newState untouched.
	if newState.Len() != 3 || !newState.Contains(tup(4)) {
		t.Error("OldState must not modify input")
	}
}

func TestInOldPointQuery(t *testing.T) {
	newState := types.NewSet(tup(1), tup(4))
	d := New()
	d.Insert(tup(4))
	d.Delete(tup(3))
	old := d.OldState(newState)
	for _, probe := range []types.Tuple{tup(1), tup(2), tup(3), tup(4), tup(5)} {
		if got, want := d.InOld(newState, probe), old.Contains(probe); got != want {
			t.Errorf("InOld(%s)=%v want %v", probe, got, want)
		}
	}
	// nil delta: old == new
	var nd *Set
	if !nd.InOld(newState, tup(1)) || nd.InOld(newState, tup(3)) {
		t.Error("nil delta InOld should consult new state")
	}
}

func TestDiff(t *testing.T) {
	old := types.NewSet(tup(1), tup(2))
	nw := types.NewSet(tup(2), tup(3))
	d := Diff(old, nw)
	if !d.Plus().Equal(types.NewSet(tup(3))) || !d.Minus().Equal(types.NewSet(tup(1))) {
		t.Errorf("Diff=%s", d)
	}
	if !Diff(old, old).IsEmpty() {
		t.Error("Diff of identical sets should be empty")
	}
}

func TestInvertIsComplementDifferential(t *testing.T) {
	d := New()
	d.Insert(tup(1))
	d.Delete(tup(2))
	inv := d.Invert()
	if !inv.Plus().Equal(types.NewSet(tup(2))) || !inv.Minus().Equal(types.NewSet(tup(1))) {
		t.Errorf("Invert=%s", inv)
	}
	if !inv.Invert().Equal(d) {
		t.Error("double inversion should be identity")
	}
}

func TestCloneClearEqual(t *testing.T) {
	d := New()
	d.Insert(tup(1))
	c := d.Clone()
	c.Delete(tup(9))
	if d.Len() != 1 || c.Len() != 2 {
		t.Error("Clone independence")
	}
	if !d.Equal(d.Clone()) {
		t.Error("Equal on clones")
	}
	if d.Equal(c) {
		t.Error("unequal deltas reported equal")
	}
	c.Clear()
	if !c.IsEmpty() {
		t.Error("Clear")
	}
}

func TestFromSetsEnforcesDisjointness(t *testing.T) {
	plus := types.NewSet(tup(1), tup(2))
	minus := types.NewSet(tup(2), tup(3))
	d := FromSets(plus, minus)
	// tup(2) appears in both: insert then delete cancels.
	if !d.Plus().Equal(types.NewSet(tup(1))) || !d.Minus().Equal(types.NewSet(tup(3))) {
		t.Errorf("FromSets=%s", d)
	}
}

func TestNilSafety(t *testing.T) {
	var d *Set
	if !d.IsEmpty() || d.Len() != 0 {
		t.Error("nil delta empties")
	}
	if d.Plus() != nil && d.Plus().Len() != 0 {
		t.Error("nil delta Plus")
	}
	if d.OldState(types.NewSet(tup(1))).Len() != 1 {
		t.Error("nil delta OldState = identity")
	}
	if d.Clone().Len() != 0 || d.Invert().Len() != 0 {
		t.Error("nil Clone/Invert")
	}
	if d.String() != "<{}, {}>" {
		t.Error("nil String")
	}
	live := New()
	live.Insert(tup(1))
	live.UnionInto(nil) // no-op
	if live.Len() != 1 {
		t.Error("UnionInto(nil)")
	}
}

// Property: folding a random event sequence into a Δ-set and applying it
// to the initial state yields exactly the final state produced by playing
// the events directly; and rollback from the final state recovers the
// initial state.
func TestDeltaRoundTrip_Quick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		state := types.NewSet()
		for i := 0; i < 10; i++ {
			state.Add(tup(int64(r.Intn(15))))
		}
		initial := state.Clone()
		d := New()
		for i := 0; i < 60; i++ {
			v := tup(int64(r.Intn(15)))
			if r.Intn(2) == 0 {
				if state.Add(v) {
					d.Insert(v)
				}
			} else {
				if state.Remove(v) {
					d.Delete(v)
				}
			}
		}
		return d.NewState(initial).Equal(state) && d.OldState(state).Equal(initial)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: ∪Δ is associative when the operands derive from a single
// serial event stream split into segments (the only case the algorithm
// relies on).
func TestDeltaUnionSegmentedStream_Quick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		state := types.NewSet()
		whole := New()
		segA, segB, segC := New(), New(), New()
		segs := []*Set{segA, segB, segC}
		for si, seg := range segs {
			_ = si
			for i := 0; i < 20; i++ {
				v := tup(int64(r.Intn(10)))
				if r.Intn(2) == 0 {
					if state.Add(v) {
						seg.Insert(v)
						whole.Insert(v)
					}
				} else {
					if state.Remove(v) {
						seg.Delete(v)
						whole.Delete(v)
					}
				}
			}
		}
		leftAssoc := Union(Union(segA, segB), segC)
		rightAssoc := Union(segA, Union(segB, segC))
		return leftAssoc.Equal(whole) && rightAssoc.Equal(whole)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
