package delta

import (
	"sync/atomic"

	"partdiff/internal/obs"
)

// Δ-sets are value types passed around by every layer, so there is no
// session handle to hang per-instance meters on. Instead the package
// keeps process-global atomics (always on — one uncontended atomic add
// per fold) and exposes them to a session's registry as func-backed
// counters via RegisterMetrics.
var (
	folds       atomic.Int64 // Insert/Delete calls (∪Δ event folds)
	cancels     atomic.Int64 // folds that cancelled an opposite pending change
	unionMerges atomic.Int64 // UnionInto/Union calls
	rollbacks   atomic.Int64 // OldState/NewState materializations
)

// RegisterMetrics exposes the package-global Δ-set counters in r.
// Values are cumulative over the process, not per session.
func RegisterMetrics(r *obs.Registry) {
	r.CounterFunc("partdiff_delta_folds_total", "Physical events folded into Δ-sets with ∪Δ semantics (process-wide).", folds.Load)
	r.CounterFunc("partdiff_delta_cancellations_total", "Δ-set folds that cancelled an opposite pending change (process-wide).", cancels.Load)
	r.CounterFunc("partdiff_delta_union_merges_total", "Δ-set ∪Δ merges (UnionInto/Union calls, process-wide).", unionMerges.Load)
	r.CounterFunc("partdiff_delta_rollbacks_total", "Logical rollback materializations (OldState/NewState, process-wide).", rollbacks.Load)
}
