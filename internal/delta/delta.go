// Package delta implements the Δ-set calculus of the paper (§4): a Δ-set
// is a disjoint pair <Δ+S, Δ−S> of the tuples added to and removed from a
// set S over a period of time, the delta-union operator ∪Δ folds physical
// events into logical (net) events, and the logical rollback computes the
// old state of a relation from its new state:
//
//	S_old = (S_new ∪ Δ−S) − Δ+S
//
// The invariant maintained throughout is disjointness: Δ+S ∩ Δ−S = ∅.
// With that invariant, folding a physical insertion of t into a Δ-set that
// records a prior deletion of t simply cancels the deletion — there is no
// net effect, so no rule should fire (§4.1 min_stock example).
package delta

import (
	"fmt"

	"partdiff/internal/types"
)

// Set is a Δ-set: the pair <Δ+S, Δ−S>. The zero Set is empty and ready
// to use.
type Set struct {
	plus  types.Set
	minus types.Set
}

// New returns an empty Δ-set.
func New() *Set { return &Set{} }

// FromSets builds a Δ-set from explicit plus and minus tuple sets,
// enforcing disjointness (shared tuples cancel, matching ∪Δ of the two
// one-sided deltas).
func FromSets(plus, minus *types.Set) *Set {
	d := New()
	plus.Each(func(t types.Tuple) bool { d.Insert(t); return true })
	minus.Each(func(t types.Tuple) bool { d.Delete(t); return true })
	return d
}

// Plus returns the set of net insertions Δ+S. The returned set is live;
// callers must not mutate it.
func (d *Set) Plus() *types.Set {
	if d == nil {
		return nil
	}
	return &d.plus
}

// Minus returns the set of net deletions Δ−S. The returned set is live;
// callers must not mutate it.
func (d *Set) Minus() *types.Set {
	if d == nil {
		return nil
	}
	return &d.minus
}

// IsEmpty reports whether the Δ-set records no net change.
func (d *Set) IsEmpty() bool {
	return d == nil || (d.plus.Len() == 0 && d.minus.Len() == 0)
}

// Len returns the total number of net changes (|Δ+| + |Δ−|).
func (d *Set) Len() int {
	if d == nil {
		return 0
	}
	return d.plus.Len() + d.minus.Len()
}

// Insert folds the physical event +t into the Δ-set using ∪Δ semantics:
// a pending deletion of t is cancelled, otherwise t becomes a net
// insertion.
func (d *Set) Insert(t types.Tuple) {
	folds.Add(1)
	if d.minus.Remove(t) {
		cancels.Add(1)
		return
	}
	d.plus.Add(t)
}

// Delete folds the physical event −t into the Δ-set: a pending insertion
// of t is cancelled, otherwise t becomes a net deletion.
func (d *Set) Delete(t types.Tuple) {
	folds.Add(1)
	if d.plus.Remove(t) {
		cancels.Add(1)
		return
	}
	d.minus.Add(t)
}

// UnionInto folds all changes of o into d (d ∪Δ o), preserving
// disjointness. o is not modified.
func (d *Set) UnionInto(o *Set) {
	if o == nil {
		return
	}
	unionMerges.Add(1)
	o.plus.Each(func(t types.Tuple) bool { d.Insert(t); return true })
	o.minus.Each(func(t types.Tuple) bool { d.Delete(t); return true })
}

// Union returns a new Δ-set a ∪Δ b, per the paper's definition:
//
//	<(Δ+a − Δ−b) ∪ (Δ+b − Δ−a), (Δ−a − Δ+b) ∪ (Δ−b − Δ+a)>
func Union(a, b *Set) *Set {
	out := New()
	out.UnionInto(a)
	out.UnionInto(b)
	return out
}

// Clone returns an independent copy.
func (d *Set) Clone() *Set {
	c := New()
	if d == nil {
		return c
	}
	c.plus = *d.plus.Clone()
	c.minus = *d.minus.Clone()
	return c
}

// Clear empties the Δ-set (used when a node's wave-front materialization
// is discarded after propagation, §5).
func (d *Set) Clear() {
	d.plus.Clear()
	d.minus.Clear()
}

// Invert returns the Δ-set with plus and minus swapped. This is the
// differential of set complement: Δ(~Q) = <Δ−Q, Δ+Q> (§4.5).
func (d *Set) Invert() *Set {
	c := New()
	if d == nil {
		return c
	}
	c.plus = *d.minus.Clone()
	c.minus = *d.plus.Clone()
	return c
}

// OldState computes S_old = (S_new ∪ Δ−S) − Δ+S — the logical rollback of
// fig. 3. newState is not modified.
func (d *Set) OldState(newState *types.Set) *types.Set {
	rollbacks.Add(1)
	old := newState.Clone()
	if d == nil {
		return old
	}
	old.AddAll(&d.minus)
	old.RemoveAll(&d.plus)
	return old
}

// NewState computes S_new = (S_old − Δ−S) ∪ Δ+S, the forward application
// of the delta (the inverse of OldState). oldState is not modified.
func (d *Set) NewState(oldState *types.Set) *types.Set {
	rollbacks.Add(1)
	nw := oldState.Clone()
	if d == nil {
		return nw
	}
	nw.RemoveAll(&d.minus)
	nw.AddAll(&d.plus)
	return nw
}

// InOld reports whether tuple t was present in the old state of a
// relation whose new state is given: t ∈ S_old ⇔ (t ∈ S_new ∧ t ∉ Δ+S) ∨
// t ∈ Δ−S. This point query avoids materializing S_old.
func (d *Set) InOld(newState *types.Set, t types.Tuple) bool {
	if d == nil {
		return newState.Contains(t)
	}
	if d.minus.Contains(t) {
		return true
	}
	return newState.Contains(t) && !d.plus.Contains(t)
}

// Diff computes the Δ-set between an old and a new state directly:
// Δ+ = new − old, Δ− = old − new. Used by the naive monitor to derive
// logical events by comparing materialized truth sets.
func Diff(old, new *types.Set) *Set {
	d := New()
	new.Each(func(t types.Tuple) bool {
		if !old.Contains(t) {
			d.plus.Add(t)
		}
		return true
	})
	old.Each(func(t types.Tuple) bool {
		if !new.Contains(t) {
			d.minus.Add(t)
		}
		return true
	})
	return d
}

// Equal reports whether two Δ-sets record the same net changes.
func (d *Set) Equal(o *Set) bool {
	return d.Plus().Equal(o.Plus()) && d.Minus().Equal(o.Minus())
}

// String renders the Δ-set as <Δ+, Δ−> with deterministic ordering.
func (d *Set) String() string {
	if d == nil {
		return "<{}, {}>"
	}
	return fmt.Sprintf("<%s, %s>", d.plus.String(), d.minus.String())
}
