package analyze

import (
	"strings"
	"testing"

	"partdiff/internal/diff"
	"partdiff/internal/objectlog"
)

// netAnalyzer builds an analyzer over the given views (all defined in
// the program) and runs AnalyzeNet with the given base capabilities.
func netAnalyzer(t *testing.T, caps map[string]Cap, views ...*objectlog.Def) *NetResult {
	t.Helper()
	prog := objectlog.NewProgram()
	for _, d := range views {
		if err := prog.Define(d); err != nil {
			t.Fatal(err)
		}
	}
	a := New(prog, WithRelations(func(name string) (int, bool) {
		switch name {
		case "b", "g", "status":
			return 1, true
		}
		return 0, false
	}))
	baseCap := func(name string) Cap {
		if c, ok := caps[name]; ok {
			return c
		}
		return CapBoth
	}
	return a.AnalyzeNet(views, baseCap, diff.DefaultOptions())
}

func hasCode(rep Report, code string) bool {
	for _, d := range rep {
		if d.Code == code {
			return true
		}
	}
	return false
}

func prunedCodes(r *NetResult) map[string]int {
	out := map[string]int{}
	for _, code := range r.Pruned {
		out[code]++
	}
	return out
}

func TestNetCapabilityFixpoint(t *testing.T) {
	V, lit := objectlog.V, objectlog.Lit
	v := def("v", 1, objectlog.NewClause(lit("v", V("X")), lit("b", V("X"))))
	w := def("w", 1, objectlog.NewClause(lit("w", V("X")), lit("g", V("X"))))
	u := def("u", 1, objectlog.NewClause(lit("u", V("X")), lit("v", V("X"))))
	res := netAnalyzer(t, map[string]Cap{"b": CapInsert, "g": CapNone}, v, w, u)
	want := map[string]Cap{"v": CapInsert, "w": CapNone, "u": CapInsert}
	for name, c := range want {
		if got := res.Caps[name]; got != c {
			t.Errorf("cap(%s) = %s, want %s", name, got, c)
		}
	}
}

func TestNetNegatedOccurrenceCrossesSigns(t *testing.T) {
	V, lit, not := objectlog.V, objectlog.Lit, objectlog.NotLit
	// v gains when g loses (trigger Δ−g) and loses when g gains. With g
	// append-only the Δ−g trigger is impossible, so only the Δ+g-
	// triggered (deletion-effect) differential of the ¬g occurrence
	// survives.
	v := def("v", 1, objectlog.NewClause(lit("v", V("X")), lit("b", V("X")), not("g", V("X"))))
	res := netAnalyzer(t, map[string]Cap{"g": CapInsert}, v)
	if got := res.Caps["v"]; got != CapBoth {
		t.Fatalf("cap(v) = %s, want insert+delete (b unrestricted)", got)
	}
	pruned := 0
	for k, code := range res.Pruned {
		if code != CodeUnreachableDelta {
			t.Errorf("pruned %s under %s, want OL301", k, code)
		}
		pruned++
	}
	// Occurrence b: both signs live. Occurrence ¬g: Δ−g trigger pruned.
	if pruned != 1 {
		t.Fatalf("pruned %d differentials, want 1:\n%v", pruned, res.Pruned)
	}
}

func TestNetOL301(t *testing.T) {
	V, lit := objectlog.V, objectlog.Lit
	v := def("v", 1, objectlog.NewClause(lit("v", V("X")), lit("b", V("X"))))

	res := netAnalyzer(t, map[string]Cap{"b": CapInsert}, v)
	if !hasCode(res.Report, CodeUnreachableDelta) {
		t.Fatalf("append-only influent produced no OL301:\n%s", res.Report)
	}
	for _, d := range res.Report {
		if d.Code == CodeUnreachableDelta && d.Severity != Info {
			t.Errorf("OL301 severity = %s, want info", d.Severity)
		}
	}
	key := diff.Key{View: "v", Disjunct: 0, Occurrence: 0, Trigger: objectlog.DeltaMinus}
	if code, ok := res.PruneCode(key); !ok || code != CodeUnreachableDelta {
		t.Fatalf("Δ− differential of v not pruned under OL301: %v %v", code, ok)
	}
	if _, ok := res.PruneCode(diff.Key{View: "v", Disjunct: 0, Occurrence: 0, Trigger: objectlog.DeltaPlus}); ok {
		t.Fatal("Δ+ differential of v pruned despite insert capability")
	}

	// Negative fixture: unrestricted base → nothing pruned, no OL301.
	res = netAnalyzer(t, nil, v)
	if hasCode(res.Report, CodeUnreachableDelta) || len(res.Pruned) != 0 {
		t.Fatalf("unrestricted base still pruned:\n%s\n%v", res.Report, res.Pruned)
	}
}

func TestNetOL302(t *testing.T) {
	V, C, lit := objectlog.V, objectlog.CInt, objectlog.Lit
	// sv constrains its second column to 3; c asks for 9 — a
	// contradiction visible only after expanding sv.
	sv := def("sv", 2, objectlog.NewClause(lit("sv", V("I"), V("S")),
		lit("status", V("I")), lit(objectlog.BuiltinEQ, V("S"), C(3))))
	c := def("c", 1, objectlog.NewClause(lit("c", V("I")), lit("sv", V("I"), C(9))))

	res := netAnalyzer(t, nil, sv, c)
	if !hasCode(res.Report, CodeDeadAcrossViews) {
		t.Fatalf("interprocedural contradiction produced no OL302:\n%s", res.Report)
	}
	for _, d := range res.Report {
		if d.Code == CodeDeadAcrossViews {
			if d.Severity != Warning {
				t.Errorf("OL302 severity = %s, want warning", d.Severity)
			}
			if d.Pred != "c" {
				t.Errorf("OL302 on %s, want c", d.Pred)
			}
		}
	}
	// All of c's differentials (one occurrence, two signs) are pruned.
	for _, trig := range []objectlog.DeltaKind{objectlog.DeltaPlus, objectlog.DeltaMinus} {
		k := diff.Key{View: "c", Disjunct: 0, Occurrence: 0, Trigger: trig}
		if code, ok := res.PruneCode(k); !ok || code != CodeDeadAcrossViews {
			t.Errorf("differential %s not pruned under OL302: %v %v", k, code, ok)
		}
	}
	// A dead view contributes no change capability.
	if got := res.Caps["c"]; got != CapNone {
		t.Errorf("cap(c) = %s, want frozen", got)
	}

	// Negative fixture: asking for the admitted constant is satisfiable.
	c2 := def("c2", 1, objectlog.NewClause(lit("c2", V("I")), lit("sv", V("I"), C(3))))
	res = netAnalyzer(t, nil, sv, c2)
	if hasCode(res.Report, CodeDeadAcrossViews) || len(res.Pruned) != 0 {
		t.Fatalf("satisfiable composition flagged dead:\n%s\n%v", res.Report, res.Pruned)
	}
}

func TestNetOL303(t *testing.T) {
	V, lit := objectlog.V, objectlog.Lit
	mk := func(name string) *objectlog.Def {
		return def(name, 1, objectlog.NewClause(lit(name, V("A")), lit("b", V("A")), lit("g", V("A"))))
	}
	r1, r2 := mk("cnd_r1"), mk("cnd_r2")

	res := netAnalyzer(t, nil, r1, r2)
	if !hasCode(res.Report, CodeDuplicateDifferential) {
		t.Fatalf("identical conditions produced no OL303:\n%s", res.Report)
	}
	found := false
	for _, d := range res.Report {
		if d.Code != CodeDuplicateDifferential {
			continue
		}
		if d.Severity != Info {
			t.Errorf("OL303 severity = %s, want info", d.Severity)
		}
		if d.Pred == "cnd_r2" && strings.Contains(d.Message, "cnd_r1") {
			found = true
		}
	}
	if !found {
		t.Fatalf("OL303 does not name the duplicated view:\n%s", res.Report)
	}
	if len(res.Pruned) != 0 {
		t.Fatalf("OL303 must not prune, got %v", res.Pruned)
	}

	// Negative fixture: structurally different conditions.
	other := def("cnd_r3", 1, objectlog.NewClause(lit("cnd_r3", V("A")), lit("b", V("A"))))
	res = netAnalyzer(t, nil, r1, other)
	if hasCode(res.Report, CodeDuplicateDifferential) {
		t.Fatalf("distinct conditions flagged OL303:\n%s", res.Report)
	}
}

func TestNetAggregateReevalCapability(t *testing.T) {
	V, lit := objectlog.V, objectlog.Lit
	agg := &objectlog.Def{Name: "s", Arity: 2, Aggregate: "sum", GroupCols: 1,
		Clauses: []objectlog.Clause{
			objectlog.NewClause(lit("s", V("X"), V("X")), lit("b", V("X"))),
		}}
	frozenAgg := &objectlog.Def{Name: "sg", Arity: 2, Aggregate: "sum", GroupCols: 1,
		Clauses: []objectlog.Clause{
			objectlog.NewClause(lit("sg", V("X"), V("X")), lit("g", V("X"))),
		}}
	res := netAnalyzer(t, map[string]Cap{"b": CapInsert, "g": CapNone}, agg, frozenAgg)
	// Any admitted influent change can move a re-evaluated extent both
	// ways; a fully frozen influent set freezes the aggregate too.
	if got := res.Caps["s"]; got != CapBoth {
		t.Errorf("cap(s) = %s, want insert+delete", got)
	}
	if got := res.Caps["sg"]; got != CapNone {
		t.Errorf("cap(sg) = %s, want frozen", got)
	}
}

func TestNetIntraproceduralDeadDisjunctPrunes(t *testing.T) {
	V, C, lit := objectlog.V, objectlog.CInt, objectlog.Lit
	// The second disjunct is dead without any expansion (OL201 is the
	// per-definition diagnostic); the network analysis still prunes its
	// differentials but does not re-report it as OL302.
	v := &objectlog.Def{Name: "v", Arity: 1, Clauses: []objectlog.Clause{
		objectlog.NewClause(lit("v", V("X")), lit("b", V("X"))),
		objectlog.NewClause(lit("v", V("X")), lit("b", V("X")), lit(objectlog.BuiltinEQ, C(1), C(2))),
	}}
	res := netAnalyzer(t, nil, v)
	if hasCode(res.Report, CodeDeadAcrossViews) {
		t.Fatalf("intraprocedurally dead disjunct re-reported as OL302:\n%s", res.Report)
	}
	codes := prunedCodes(res)
	if codes[CodeDeadClause] != 2 {
		t.Fatalf("dead disjunct differentials pruned = %v, want 2×OL201", codes)
	}
}
