// Package analyze is the definition-time static analyzer for ObjectLog
// programs. The paper's correctness guarantees (§4.3–§4.5) hold only
// for rule conditions that are range restricted, safely negated and
// stratified; this package verifies those properties — plus catalog
// type correctness and differencing applicability — when a derived
// function or rule is defined, instead of when a transaction commits.
//
// The analyzer runs five passes over a definition (and, for rules, the
// program around it):
//
//  1. safety/range restriction of every disjunct (OL001);
//  2. stratification of negation and aggregates over the predicate
//     dependency graph (OL002, OL003);
//  3. type checking of literal arguments against catalog signatures
//     (OL004–OL007);
//  4. differencing applicability — constructs internal/diff cannot
//     incrementalize (OL101 annotated literals, OL102 re-evaluated
//     influents);
//  5. warnings — dead disjuncts (OL201), conditions with no stored
//     influent (OL202), duplicate disjuncts (OL203).
//
// Diagnostics carry a stable code, a severity and a clause/literal
// position, so the same defect reports the same code whether it is
// caught here, in the expander, in the differencing compiler or in the
// evaluator.
package analyze

import (
	"fmt"

	"partdiff/internal/catalog"
	"partdiff/internal/objectlog"
)

// Analyzer holds the context an analysis runs against: the program for
// dependency and stratification analysis, and optionally the catalog
// and the store's base relations for type and arity checking.
type Analyzer struct {
	prog *objectlog.Program
	cat  *catalog.Catalog
	// relArity resolves a base relation name to its arity (the store's
	// relations, when the caller has one).
	relArity func(name string) (arity int, ok bool)
}

// Option configures an Analyzer.
type Option func(*Analyzer)

// WithCatalog supplies the schema catalog, enabling the type-checking
// pass (arity, argument types, builtin comparability).
func WithCatalog(c *catalog.Catalog) Option {
	return func(a *Analyzer) { a.cat = c }
}

// WithRelations supplies a base-relation arity lookup (typically the
// store), so literals over relations created outside the catalog can
// be arity-checked and recognized as stored.
func WithRelations(f func(name string) (int, bool)) Option {
	return func(a *Analyzer) { a.relArity = f }
}

// New returns an analyzer over the given program. prog may be nil (an
// empty program is assumed).
func New(prog *objectlog.Program, opts ...Option) *Analyzer {
	if prog == nil {
		prog = objectlog.NewProgram()
	}
	a := &Analyzer{prog: prog}
	for _, o := range opts {
		o(a)
	}
	return a
}

// AnalyzeDef runs all passes over one derived-predicate definition.
func (a *Analyzer) AnalyzeDef(def *objectlog.Def) Report {
	return a.analyze(def, nil, false)
}

// AnalyzeRule runs all passes over a rule-condition definition. The
// first numParams head variables are the rule's parameters; activation
// substitutes them with constants, so safety analysis treats them as
// pre-bound. Rule-only passes (no stored influent, re-evaluated
// influents) run in addition to the definition passes.
func (a *Analyzer) AnalyzeRule(def *objectlog.Def, numParams int) Report {
	prebound := map[string]bool{}
	for i, t := range headArgs(def) {
		if i >= numParams {
			break
		}
		if t.IsVar {
			prebound[t.Var] = true
		}
	}
	return a.analyze(def, prebound, true)
}

// AnalyzeProgram runs AnalyzeDef over every definition of the program,
// in name order.
func (a *Analyzer) AnalyzeProgram() Report {
	var out Report
	for _, name := range a.prog.Names() {
		def, _ := a.prog.Def(name)
		out = append(out, a.AnalyzeDef(def)...)
	}
	return out
}

// headArgs returns the head argument terms of the first clause (all
// clauses of a definition share the head shape).
func headArgs(def *objectlog.Def) []objectlog.Term {
	if len(def.Clauses) == 0 {
		return nil
	}
	return def.Clauses[0].Head.Args
}

func (a *Analyzer) analyze(def *objectlog.Def, prebound map[string]bool, isRule bool) Report {
	var r Report
	r = append(r, a.passApplicability(def)...)
	r = append(r, a.passSafety(def, prebound)...)
	r = append(r, a.passStratification(def)...)
	r = append(r, a.passTypes(def)...)
	r = append(r, a.passWarnings(def)...)
	if isRule {
		r = append(r, a.passRule(def)...)
	}
	return r
}

// passSafety checks range restriction of every disjunct (pass 1). A
// definition with several clauses is the DNF of a disjunctive body;
// each disjunct must independently be safe.
func (a *Analyzer) passSafety(def *objectlog.Def, prebound map[string]bool) Report {
	var r Report
	for ci, c := range def.Clauses {
		for _, v := range objectlog.SafetyViolations(c, prebound) {
			r = append(r, Diagnostic{
				Code:     CodeUnsafe,
				Severity: Error,
				Pred:     def.Name,
				Clause:   ci,
				Literal:  -1,
				Message:  fmt.Sprintf("variable %s in %s is not range restricted", v.Var, v.Where),
				Hint:     fmt.Sprintf("bind %s with a positive stored or derived literal in the same disjunct", v.Var),
			})
		}
	}
	return r
}

// passStratification checks negation and aggregation against the
// predicate dependency graph (pass 2): a predicate may not negate a
// member of its own recursive component, and an aggregate view may not
// be part of one (its fixpoint would aggregate itself).
func (a *Analyzer) passStratification(def *objectlog.Def) Report {
	comp, recursive := a.componentsWith(def)
	var r Report
	if def.Aggregate != "" && recursive[def.Name] {
		r = append(r, Diagnostic{
			Code:     CodeUnstratifiedAggregate,
			Severity: Error,
			Pred:     def.Name,
			Clause:   -1,
			Literal:  -1,
			Message:  fmt.Sprintf("aggregate view %q is part of a recursive component: aggregation over its own fixpoint is unstratified", def.Name),
			Hint:     "aggregate a non-recursive subquery instead",
		})
	}
	for ci, c := range def.Clauses {
		for li, l := range c.Body {
			if objectlog.IsBuiltin(l.Pred) {
				continue
			}
			sameComp := comp[l.Pred] != 0 && comp[l.Pred] == comp[def.Name] && recursive[def.Name]
			if !sameComp {
				continue
			}
			if l.Negated {
				r = append(r, Diagnostic{
					Code:     CodeUnstratifiedNegation,
					Severity: Error,
					Pred:     def.Name,
					Clause:   ci,
					Literal:  li,
					Message:  fmt.Sprintf("recursive component of %q negates member %q: unstratified negation is not supported", def.Name, l.Pred),
					Hint:     "negate a predicate from a lower stratum (one that does not depend on " + def.Name + ")",
				})
			}
			if d, ok := a.prog.Def(l.Pred); ok && d.Aggregate != "" {
				r = append(r, Diagnostic{
					Code:     CodeUnstratifiedAggregate,
					Severity: Error,
					Pred:     def.Name,
					Clause:   ci,
					Literal:  li,
					Message:  fmt.Sprintf("recursive component of %q contains aggregate view %q: aggregation inside recursion is unstratified", def.Name, l.Pred),
					Hint:     "aggregate outside the recursive component",
				})
			}
		}
	}
	return r
}

// passApplicability flags constructs the differencing compiler cannot
// incrementalize (pass 4). Annotated (Δ/old) literals are errors: the
// compiler owns those annotations. Aggregate and recursive definitions
// are informational — propnet monitors them correctly, but by
// re-evaluation rather than partial differentials.
func (a *Analyzer) passApplicability(def *objectlog.Def) Report {
	var r Report
	for ci, c := range def.Clauses {
		for li, l := range c.Body {
			if l.Delta != objectlog.DeltaNone || l.Old {
				r = append(r, Diagnostic{
					Code:     CodeAnnotatedLiteral,
					Severity: Error,
					Pred:     def.Name,
					Clause:   ci,
					Literal:  li,
					Message:  fmt.Sprintf("definition contains annotated literal %s; differentials must be generated from plain clauses", l),
					Hint:     "remove the Δ/old annotation — the differencing compiler introduces these itself",
				})
			}
		}
	}
	_, recursive := a.componentsWith(def)
	switch {
	case def.Aggregate != "":
		r = append(r, Diagnostic{
			Code:     CodeReevaluated,
			Severity: Info,
			Pred:     def.Name,
			Clause:   -1,
			Literal:  -1,
			Message:  fmt.Sprintf("aggregate view %q is monitored by re-evaluation (old vs new state), not partial differencing", def.Name),
		})
	case recursive[def.Name]:
		r = append(r, Diagnostic{
			Code:     CodeReevaluated,
			Severity: Info,
			Pred:     def.Name,
			Clause:   -1,
			Literal:  -1,
			Message:  fmt.Sprintf("recursive predicate %q is monitored by fixpoint re-evaluation, not partial differencing", def.Name),
		})
	}
	return r
}

// passWarnings flags legal but suspicious definitions (pass 5): dead
// (statically empty) disjuncts and duplicate disjuncts.
func (a *Analyzer) passWarnings(def *objectlog.Def) Report {
	var r Report
	seen := map[string]int{}
	for ci, c := range def.Clauses {
		if _, ok := objectlog.Simplify(c); !ok {
			r = append(r, Diagnostic{
				Code:     CodeDeadClause,
				Severity: Warning,
				Pred:     def.Name,
				Clause:   ci,
				Literal:  -1,
				Message:  fmt.Sprintf("disjunct is statically empty (contradictory ground literals): %s", c),
				Hint:     "remove the disjunct or fix the contradictory constants",
			})
			continue
		}
		key := canonClause(c)
		if prev, dup := seen[key]; dup {
			r = append(r, Diagnostic{
				Code:     CodeDuplicateClause,
				Severity: Warning,
				Pred:     def.Name,
				Clause:   ci,
				Literal:  -1,
				Message:  fmt.Sprintf("disjunct duplicates disjunct %d (identical up to variable renaming): %s", prev, c),
				Hint:     "remove the shadowed disjunct",
			})
			continue
		}
		seen[key] = ci
	}
	return r
}

// passRule runs the rule-only checks: a condition whose transitive
// influents include no stored function can never be triggered (OL202),
// and influents that are aggregate or recursive views are monitored by
// re-evaluation (OL102 info).
func (a *Analyzer) passRule(def *objectlog.Def) Report {
	var r Report
	stored := false
	var reeval []string
	seen := map[string]bool{def.Name: true}
	queue := []string{def.Name}
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		d, ok := a.prog.Def(name)
		if name == def.Name {
			// The condition definition under analysis is not
			// registered in the program (rule conditions live on the
			// rule object until activation specializes them).
			d, ok = def, true
		}
		if !ok {
			if a.isStored(name) {
				stored = true
			}
			continue
		}
		if name != def.Name && (d.Aggregate != "" || a.prog.IsRecursive(name)) {
			reeval = append(reeval, name)
		}
		if name != def.Name {
			// A defect in a referenced view surfaces when the rule is
			// activated and the view enters the propagation network;
			// report it against the rule now (errors only — the view's
			// own warnings were reported when it was defined).
			r = append(r, a.passStratification(d).Errors()...)
		}
		for _, infl := range d.Influents() {
			if !seen[infl] {
				seen[infl] = true
				queue = append(queue, infl)
			}
		}
	}
	if !stored {
		r = append(r, Diagnostic{
			Code:     CodeNeverTriggered,
			Severity: Warning,
			Pred:     def.Name,
			Clause:   -1,
			Literal:  -1,
			Message:  "condition references no stored function: no update can change it, so the rule will never be triggered",
			Hint:     "reference at least one stored function or type extent in the condition",
		})
	}
	for _, name := range reeval {
		r = append(r, Diagnostic{
			Code:     CodeReevaluated,
			Severity: Info,
			Pred:     def.Name,
			Clause:   -1,
			Literal:  -1,
			Message:  fmt.Sprintf("condition influent %q is monitored by re-evaluation, not partial differencing", name),
		})
	}
	return r
}

// isStored reports whether name denotes something updates can change:
// a base relation, a type extent, or a stored catalog function.
func (a *Analyzer) isStored(name string) bool {
	if _, ok := objectlog.IsTypePred(name); ok {
		return true
	}
	if a.relArity != nil {
		if _, ok := a.relArity(name); ok {
			return true
		}
	}
	if a.cat != nil {
		if f, ok := a.cat.Function(name); ok && f.Kind == catalog.Stored {
			return true
		}
	}
	return false
}

// componentsWith computes the strongly connected components of the
// derived-predicate dependency graph, with def added (it may not be
// registered in the program yet when analysis runs at definition time).
// comp maps each derived name to a non-zero component id; recursive
// marks names in a non-trivial component or with a self-loop.
func (a *Analyzer) componentsWith(def *objectlog.Def) (comp map[string]int, recursive map[string]bool) {
	defs := map[string]*objectlog.Def{}
	for _, name := range a.prog.Names() {
		d, _ := a.prog.Def(name)
		defs[name] = d
	}
	if def != nil {
		defs[def.Name] = def
	}
	// Tarjan's algorithm.
	comp = map[string]int{}
	recursive = map[string]bool{}
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next, compID := 0, 0
	var strong func(string)
	strong = func(v string) {
		next++
		index[v] = next
		low[v] = next
		stack = append(stack, v)
		onStack[v] = true
		selfLoop := false
		for _, w := range defs[v].Influents() {
			if _, derived := defs[w]; !derived {
				continue
			}
			if w == v {
				selfLoop = true
				continue
			}
			if index[w] == 0 {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			compID++
			size := 0
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = compID
				size++
				if w == v {
					break
				}
			}
			if size > 1 || selfLoop {
				for n, id := range comp {
					if id == compID {
						recursive[n] = true
					}
				}
			}
		}
	}
	for name := range defs {
		if index[name] == 0 {
			strong(name)
		}
	}
	return comp, recursive
}

// canonClause renders a clause with variables renamed in first-use
// order, so alpha-equivalent clauses render identically.
func canonClause(c objectlog.Clause) string {
	return objectlog.CanonicalClause(c)
}
