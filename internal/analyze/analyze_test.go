package analyze

import (
	"strings"
	"testing"

	"partdiff/internal/catalog"
	"partdiff/internal/objectlog"
)

// testCatalog declares the stored functions the typecheck cases rely
// on: q(integer)->integer and label(charstring)->charstring.
func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	for _, f := range []*catalog.Function{
		{Name: "q", Kind: catalog.Stored,
			Params:  []catalog.Param{{Name: "a", Type: catalog.TypeInteger}},
			Results: []string{catalog.TypeInteger}},
		{Name: "label", Kind: catalog.Stored,
			Params:  []catalog.Param{{Name: "a", Type: catalog.TypeString}},
			Results: []string{catalog.TypeString}},
	} {
		if err := cat.DeclareFunction(f); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

// baseRels resolves the base relations the safety cases range over.
func baseRels(name string) (int, bool) {
	switch name {
	case "b", "g":
		return 1, true
	}
	return 0, false
}

func def(name string, arity int, clauses ...objectlog.Clause) *objectlog.Def {
	return &objectlog.Def{Name: name, Arity: arity, Clauses: clauses}
}

// TestLintDiagnosticCodes drives one negative definition per diagnostic
// code through the analyzer and checks the code, its severity, and that
// error codes make the report rejectable.
func TestLintDiagnosticCodes(t *testing.T) {
	V, C := objectlog.V, objectlog.CInt
	lit, not := objectlog.Lit, objectlog.NotLit

	cases := []struct {
		name     string
		def      *objectlog.Def
		rule     bool // analyze as rule condition (numParams 0)
		prog     []*objectlog.Def
		want     string
		severity Severity
	}{
		{
			name: "OL001 unsafe head variable",
			def: def("f", 1,
				objectlog.NewClause(lit("f", V("X")), lit(objectlog.BuiltinLT, V("X"), C(5)))),
			want:     CodeUnsafe,
			severity: Error,
		},
		{
			name: "OL002 unstratified negation",
			def: def("p", 1,
				objectlog.NewClause(lit("p", V("X")), lit("b", V("X")), not("p", V("X")))),
			want:     CodeUnstratifiedNegation,
			severity: Error,
		},
		{
			name: "OL003 recursive aggregate",
			def: &objectlog.Def{Name: "s", Arity: 1, Aggregate: "sum",
				Clauses: []objectlog.Clause{
					objectlog.NewClause(lit("s", V("X")), lit("b", V("X")), lit("s", V("X"))),
				}},
			want:     CodeUnstratifiedAggregate,
			severity: Error,
		},
		{
			name: "OL004 unknown predicate",
			def: def("f", 1,
				objectlog.NewClause(lit("f", V("X")), lit("mystery", V("X")))),
			want:     CodeUnknownPredicate,
			severity: Warning,
		},
		{
			name: "OL005 arity mismatch",
			def: def("f", 1,
				objectlog.NewClause(lit("f", V("X")), lit("q", V("X")))),
			want:     CodeArityMismatch,
			severity: Error,
		},
		{
			name: "OL006 conflicting types",
			def: def("f", 1,
				objectlog.NewClause(lit("f", V("X")),
					lit("q", V("X"), V("Y")), lit("label", V("X"), V("Z")))),
			want:     CodeConflictingTypes,
			severity: Error,
		},
		{
			name: "OL007 incomparable builtin",
			def: def("f", 1,
				objectlog.NewClause(lit("f", V("X")),
					lit("q", V("X"), V("Y")), lit("label", V("S"), V("T")),
					lit(objectlog.BuiltinLT, V("Y"), V("T")))),
			want:     CodeIncomparable,
			severity: Error,
		},
		{
			name: "OL101 annotated literal",
			def: def("f", 1,
				objectlog.NewClause(lit("f", V("X")),
					lit("b", V("X")).WithDelta(objectlog.DeltaPlus))),
			want:     CodeAnnotatedLiteral,
			severity: Error,
		},
		{
			name: "OL102 recursive reevaluated",
			def: def("p", 1,
				objectlog.NewClause(lit("p", V("X")), lit("b", V("X"))),
				objectlog.NewClause(lit("p", V("X")), lit("g", V("X")), lit("p", V("X")))),
			want:     CodeReevaluated,
			severity: Info,
		},
		{
			name: "OL201 dead clause",
			def: def("f", 0,
				objectlog.NewClause(lit("f"), lit(objectlog.BuiltinEQ, C(1), C(2)))),
			want:     CodeDeadClause,
			severity: Warning,
		},
		{
			name: "OL202 never triggered",
			def: def("cnd", 1,
				objectlog.NewClause(lit("cnd", V("X")), lit("d", V("X")))),
			rule: true,
			prog: []*objectlog.Def{
				def("d", 1, objectlog.NewClause(lit("d", V("X")), lit(objectlog.BuiltinEQ, V("X"), C(5)))),
			},
			want:     CodeNeverTriggered,
			severity: Warning,
		},
		{
			name: "OL203 duplicate clause",
			def: def("f", 1,
				objectlog.NewClause(lit("f", V("X")), lit("b", V("X")), lit("g", V("X"))),
				objectlog.NewClause(lit("f", V("Y")), lit("g", V("Y")), lit("b", V("Y")))),
			want:     CodeDuplicateClause,
			severity: Warning,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog := objectlog.NewProgram()
			for _, d := range tc.prog {
				if err := prog.Define(d); err != nil {
					t.Fatal(err)
				}
			}
			a := New(prog, WithCatalog(testCatalog(t)), WithRelations(baseRels))
			var rep Report
			if tc.rule {
				rep = a.AnalyzeRule(tc.def, 0)
			} else {
				rep = a.AnalyzeDef(tc.def)
			}
			found := false
			for _, d := range rep {
				if d.Code == tc.want {
					found = true
					if d.Severity != tc.severity {
						t.Errorf("code %s has severity %s, want %s", tc.want, d.Severity, tc.severity)
					}
					if d.Pred == "" || d.Message == "" {
						t.Errorf("diagnostic missing pred or message: %+v", d)
					}
				}
			}
			if !found {
				t.Fatalf("missing %s; report:\n%s", tc.want, rep)
			}
			if tc.severity == Error && rep.Err() == nil {
				t.Errorf("report with %s error has nil Err()", tc.want)
			}
			if tc.severity != Error && rep.HasErrors() {
				t.Errorf("unexpected errors in report:\n%s", rep.Errors())
			}
		})
	}
}

// TestLintCleanDef checks a well-formed definition produces an empty
// report against the same context the negative cases use.
func TestLintCleanDef(t *testing.T) {
	V := objectlog.V
	lit := objectlog.Lit
	d := def("f", 1,
		objectlog.NewClause(lit("f", V("X")),
			lit("q", V("X"), V("Y")), lit(objectlog.BuiltinGT, V("Y"), objectlog.CInt(0))))
	a := New(objectlog.NewProgram(), WithCatalog(testCatalog(t)), WithRelations(baseRels))
	if rep := a.AnalyzeDef(d); len(rep) != 0 {
		t.Fatalf("clean definition produced diagnostics:\n%s", rep)
	}
}

// TestLintRuleParamsPrebound checks that rule parameters count as bound
// in the safety pass (activation substitutes them with constants).
func TestLintRuleParamsPrebound(t *testing.T) {
	V := objectlog.V
	lit := objectlog.Lit
	// cnd(P, X) :- q(X, Y), Y > P — P is only used in a comparison, so
	// the clause is unsafe as a plain definition but safe as a
	// one-parameter rule condition.
	d := def("cnd", 2,
		objectlog.NewClause(lit("cnd", V("P"), V("X")),
			lit("q", V("X"), V("Y")), lit(objectlog.BuiltinGT, V("Y"), V("P"))))
	a := New(objectlog.NewProgram(), WithCatalog(testCatalog(t)), WithRelations(baseRels))
	if rep := a.AnalyzeDef(d); !rep.HasErrors() {
		t.Fatal("expected OL001 when P is not prebound")
	}
	if rep := a.AnalyzeRule(d, 1); rep.HasErrors() {
		t.Fatalf("rule analysis with prebound parameter reported errors:\n%s", rep.Errors())
	}
}

// TestLintReport covers the report helpers the shell relies on.
func TestLintReport(t *testing.T) {
	rep := Report{
		{Code: CodeReevaluated, Severity: Info, Pred: "a", Clause: -1, Literal: -1, Message: "m"},
		{Code: CodeDeadClause, Severity: Warning, Pred: "b", Clause: 0, Literal: -1, Message: "m"},
		{Code: CodeUnsafe, Severity: Error, Pred: "c", Clause: 1, Literal: 2, Message: "m", Hint: "h"},
		{Code: CodeArityMismatch, Severity: Error, Pred: "d", Clause: -1, Literal: -1, Message: "m"},
	}
	if !rep.HasErrors() || rep.Clean() {
		t.Fatal("report with errors should not be clean")
	}
	if n := len(rep.Warnings()); n != 1 {
		t.Fatalf("Warnings() = %d, want 1", n)
	}
	err := rep.Err()
	if err == nil || !strings.Contains(err.Error(), "(and 1 more errors)") {
		t.Fatalf("Err() = %v, want first error plus count", err)
	}
	got := rep[2].String()
	want := "error[OL001] c, clause 1, literal 2: m (hint: h)"
	if got != want {
		t.Fatalf("Diagnostic.String() = %q, want %q", got, want)
	}
	if !(Report{rep[0]}).Clean() {
		t.Fatal("info-only report should be clean")
	}
}
