// Whole-network Δ-effect analysis: an interprocedural,
// abstract-interpretation-style pass over the compiled program that
// classifies every partial differential before it ever runs.
//
// The analysis works on a two-bit change-capability lattice per
// predicate (can it gain tuples? can it lose tuples?). Base relations
// start from their declared storage capabilities (insert-only,
// delete-only, frozen, both — enforced by the store, so a declaration
// is a proof, not a hint); view capabilities are the least fixpoint of
// propagating trigger→effect signs through the compiled differentials.
// A differential whose trigger Δ-set is provably always empty (OL301),
// or whose disjunct is unsatisfiable once constants are propagated
// through view composition (OL302), is recorded as prunable: the
// propagation network drops it from scheduling without changing any
// observable Δ-set, state, or rule firing. Structurally identical
// differentials compiled under different views are reported as
// shared-subnetwork candidates (OL303) but never pruned.
//
// Soundness: a differential is pruned only on a proof that its output
// is empty in every reachable database state — never on statistics or
// heuristics. OL301 rests on store-enforced capability declarations
// (which are restriction-only, so a proof can never be invalidated
// later); OL302 rests on constant contradictions that hold in all
// states; Δ-substitution preserves both proofs because Δ+P ⊆ P_new and
// Δ−P ⊆ P_old.

package analyze

import (
	"fmt"
	"sort"

	"partdiff/internal/diff"
	"partdiff/internal/objectlog"
)

// Cap is the change-capability lattice element of one predicate: which
// signs of change its extent can undergo. It mirrors
// storage.Capability bit-for-bit but is defined here independently so
// the analyzer does not depend on the storage layer.
type Cap uint8

// The capability lattice. CapNone (frozen) is bottom, CapBoth is top.
const (
	CapNone   Cap = 0
	CapInsert Cap = 1 << 0
	CapDelete Cap = 1 << 1
	CapBoth       = CapInsert | CapDelete
)

// Has reports whether the capability admits the given change sign.
func (c Cap) Has(k objectlog.DeltaKind) bool { return c&capBit(k) != 0 }

// String names the lattice element.
func (c Cap) String() string {
	switch c {
	case CapNone:
		return "frozen"
	case CapInsert:
		return "insert-only"
	case CapDelete:
		return "delete-only"
	default:
		return "insert+delete"
	}
}

// capBit maps a Δ-sign to its capability bit.
func capBit(k objectlog.DeltaKind) Cap {
	if k == objectlog.DeltaPlus {
		return CapInsert
	}
	return CapDelete
}

// NetResult is the outcome of a whole-network analysis.
type NetResult struct {
	// Report holds the OL3xx diagnostics, ordered by pass (OL302
	// warnings, then OL301 infos, then OL303 infos), each pass in view
	// order.
	Report Report
	// Caps is the fixpoint change capability of every analyzed view.
	Caps map[string]Cap
	// Pruned maps each provably zero-effect differential to the
	// diagnostic code justifying the prune (OL301, OL302, or OL201 for
	// disjuncts that are already dead intraprocedurally).
	Pruned map[diff.Key]string
}

// PruneCode returns the diagnostic code under which the differential
// was pruned, if it was.
func (r *NetResult) PruneCode(k diff.Key) (string, bool) {
	code, ok := r.Pruned[k]
	return code, ok
}

// AnalyzeNet runs the whole-network Δ-effect analysis over the given
// views (typically the full view set of a propagation network, closed
// over derived influents). baseCap reports the declared change
// capability of a base relation (nil, or any name it does not know,
// means unrestricted). opts must match the differential-generation
// options the network uses, so the analysis sees exactly the
// differentials that would be scheduled.
//
// Views that fail classification or generation are skipped: their
// defects are definition-time errors reported by AnalyzeDef, not
// network-level facts.
func (a *Analyzer) AnalyzeNet(views []*objectlog.Def, baseCap func(string) Cap, opts diff.Options) *NetResult {
	res := &NetResult{Caps: map[string]Cap{}, Pruned: map[diff.Key]string{}}
	sorted := make([]*objectlog.Def, len(views))
	copy(sorted, views)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })

	// Classify and compile once, up front.
	plans := map[string]diff.Plan{}
	diffs := map[string][]diff.Differential{}
	for _, def := range sorted {
		plan, err := diff.Classify(def, a.prog)
		if err != nil {
			continue
		}
		if plan == diff.Differenced {
			ds, err := diff.Generate(def, opts)
			if err != nil {
				continue
			}
			diffs[def.Name] = ds
		}
		plans[def.Name] = plan
	}
	analyzed := func(name string) bool { _, ok := plans[name]; return ok }

	// Pass 1: interprocedural dead disjuncts (OL302). A disjunct dead
	// before expansion is OL201 territory (reported by the per-def
	// analyzer); here we only warn when the contradiction needs
	// constants propagated through the views the disjunct joins.
	dead := map[string]map[int]string{} // view → disjunct → prune code
	for _, def := range sorted {
		if plans[def.Name] != diff.Differenced {
			continue
		}
		for ci, c := range def.Clauses {
			if _, ok := objectlog.Simplify(c); !ok {
				markDead(dead, def.Name, ci, CodeDeadClause)
				continue
			}
			if a.prog == nil || !deadAcrossViews(c, a.prog) {
				continue
			}
			markDead(dead, def.Name, ci, CodeDeadAcrossViews)
			res.Report = append(res.Report, Diagnostic{
				Code:     CodeDeadAcrossViews,
				Severity: Warning,
				Pred:     def.Name,
				Clause:   ci,
				Literal:  -1,
				Message:  "disjunct is statically empty once the views it joins are expanded; its differentials can never produce tuples and are pruned",
				Hint:     "constants flowing through the view composition contradict — fix the disjunct or drop it",
			})
		}
	}

	// Pass 2: change-capability fixpoint. Views start at bottom; each
	// round a view gains the effect sign of every live differential
	// whose trigger sign its influent can produce. Monotone over a
	// finite lattice, so it terminates.
	for _, def := range sorted {
		if analyzed(def.Name) {
			res.Caps[def.Name] = CapNone
		}
	}
	capOf := func(name string) Cap {
		if c, ok := res.Caps[name]; ok {
			return c
		}
		if a.prog != nil && a.prog.IsDerived(name) {
			return CapBoth // derived but outside the analyzed set: unknown
		}
		if baseCap == nil {
			return CapBoth
		}
		return baseCap(name)
	}
	for changed := true; changed; {
		changed = false
		for _, def := range sorted {
			if !analyzed(def.Name) {
				continue
			}
			var c Cap
			if plans[def.Name] == diff.Differenced {
				for _, d := range diffs[def.Name] {
					if _, isDead := dead[def.Name][d.Disjunct]; isDead {
						continue
					}
					if capOf(d.Influent).Has(d.TriggerSign) {
						c |= capBit(d.EffectSign)
					}
				}
			} else {
				// Re-evaluated views (aggregates, recursive components)
				// are recomputed wholesale: any influent change can move
				// their extent either way.
				for _, infl := range def.Influents() {
					if infl != def.Name && capOf(infl) != CapNone {
						c = CapBoth
						break
					}
				}
			}
			if c != res.Caps[def.Name] {
				res.Caps[def.Name] = c
				changed = true
			}
		}
	}

	// Pass 3: prune verdicts. Dead disjuncts prune all their
	// differentials; live differentials prune when the influent can
	// never produce the trigger sign (OL301).
	for _, def := range sorted {
		for _, d := range diffs[def.Name] {
			if code, isDead := dead[def.Name][d.Disjunct]; isDead {
				res.Pruned[d.Key()] = code
				continue
			}
			if capOf(d.Influent).Has(d.TriggerSign) {
				continue
			}
			res.Pruned[d.Key()] = CodeUnreachableDelta
			word := "insertions"
			if d.TriggerSign == objectlog.DeltaMinus {
				word = "deletions"
			}
			res.Report = append(res.Report, Diagnostic{
				Code:     CodeUnreachableDelta,
				Severity: Info,
				Pred:     def.Name,
				Clause:   d.Disjunct,
				Literal:  d.Occurrence,
				Message:  fmt.Sprintf("differential %s can never fire: %s admits no %s (capability %s)", d.Name(), d.Influent, word, capOf(d.Influent)),
				Hint:     "pruned from scheduling; the network stays equivalent",
			})
		}
	}

	// Pass 4: duplicate differentials across views (OL303). Group live
	// differentials by trigger/effect signs and the canonical rendering
	// of their clause with the head predicate anonymized; a group
	// spanning several views marks a shared-subnetwork candidate.
	type group struct{ views []string }
	groups := map[string]*group{}
	var keys []string
	for _, def := range sorted {
		for _, d := range diffs[def.Name] {
			if _, isPruned := res.Pruned[d.Key()]; isPruned {
				continue
			}
			k := fmt.Sprintf("%s|%s|%s", d.TriggerSign, d.EffectSign, objectlog.CanonicalBody(d.Clause))
			g, ok := groups[k]
			if !ok {
				g = &group{}
				groups[k] = g
				keys = append(keys, k)
			}
			if len(g.views) == 0 || g.views[len(g.views)-1] != def.Name {
				g.views = append(g.views, def.Name)
			}
		}
	}
	reported := map[string]bool{} // view pair → already diagnosed
	for _, k := range keys {
		g := groups[k]
		for i := 1; i < len(g.views); i++ {
			pair := g.views[0] + "↔" + g.views[i]
			if reported[pair] {
				continue
			}
			reported[pair] = true
			res.Report = append(res.Report, Diagnostic{
				Code:     CodeDuplicateDifferential,
				Severity: Info,
				Pred:     g.views[i],
				Clause:   -1,
				Literal:  -1,
				Message:  fmt.Sprintf("compiles differentials structurally identical to those of %s", g.views[0]),
				Hint:     "share the condition via `create shared function` so the subnetwork is computed once",
			})
		}
	}
	return res
}

func markDead(dead map[string]map[int]string, view string, disjunct int, code string) {
	m, ok := dead[view]
	if !ok {
		m = map[int]string{}
		dead[view] = m
	}
	m[disjunct] = code
}

// deadAcrossViews reports whether the clause is unsatisfiable in every
// database state once the derived predicates it references are inlined:
// every expansion either dies on a head-unification constant conflict
// or simplifies to a static contradiction. Expansion failures (e.g.
// arity defects, which per-definition analysis reports separately)
// yield no proof, so the answer is false.
func deadAcrossViews(c objectlog.Clause, prog *objectlog.Program) bool {
	expanded, err := objectlog.Expand(c, prog, nil)
	if err != nil {
		return false
	}
	for _, ec := range expanded {
		if _, ok := objectlog.Simplify(ec); ok {
			return false
		}
	}
	return true
}
