package analyze

import (
	"fmt"

	"partdiff/internal/catalog"
	"partdiff/internal/objectlog"
	"partdiff/internal/types"
)

// Type classes used by the checking pass. Checking works on classes —
// numeric, string, boolean, object — because the value model coerces
// within a class (Int(2) equals Float(2.0)) but never across classes.
const (
	classUnknown = ""
	clsNumeric   = "numeric"
	clsString    = "charstring"
	clsBoolean   = "boolean"
	clsObject    = "object"
)

// classOfTypeName maps a declared column type to its class.
func classOfTypeName(name string) string {
	switch name {
	case catalog.TypeInteger, catalog.TypeReal:
		return clsNumeric
	case catalog.TypeString:
		return clsString
	case catalog.TypeBoolean:
		return clsBoolean
	default:
		return clsObject
	}
}

// classOfConst maps a constant's runtime kind to its class.
func classOfConst(v types.Value) string {
	switch v.Kind {
	case types.KindInt, types.KindFloat:
		return clsNumeric
	case types.KindString:
		return clsString
	case types.KindBool:
		return clsBoolean
	case types.KindObject:
		return clsObject
	default:
		return classUnknown
	}
}

// varType records what a clause position tells us about a variable.
type varType struct {
	class    string
	typeName string // declared type name, when known ("" otherwise)
	from     string // human-readable source, e.g. `quantity argument 1 (integer)`
}

// signature resolves a predicate to its relational arity and (when the
// catalog knows it) its declared column types. known is false when the
// predicate cannot be resolved at all.
func (a *Analyzer) signature(pred string) (arity int, colTypes []string, known bool) {
	if tn, ok := objectlog.IsTypePred(pred); ok {
		return 1, []string{tn}, true
	}
	if a.cat != nil {
		if f, ok := a.cat.Function(pred); ok {
			return f.Arity(), f.ColumnTypes(), true
		}
	}
	if d, ok := a.prog.Def(pred); ok {
		return d.ExternalArity(), nil, true
	}
	if a.relArity != nil {
		if n, ok := a.relArity(pred); ok {
			return n, nil, true
		}
	}
	return 0, nil, false
}

// passTypes checks literal arguments against catalog signatures
// (pass 3): unknown predicates (OL004), arity (OL005), argument types
// per variable and constant (OL006), and class compatibility of
// comparison and arithmetic builtins (OL007).
func (a *Analyzer) passTypes(def *objectlog.Def) Report {
	var r Report
	unknownSeen := map[string]bool{}
	for ci, c := range def.Clauses {
		vars := map[string]varType{}
		// First bind variable classes from relation literals.
		for li, l := range c.Body {
			if objectlog.IsBuiltin(l.Pred) {
				continue
			}
			arity, colTypes, known := a.signature(l.Pred)
			if !known {
				if !unknownSeen[l.Pred] {
					unknownSeen[l.Pred] = true
					r = append(r, Diagnostic{
						Code:     CodeUnknownPredicate,
						Severity: Warning,
						Pred:     def.Name,
						Clause:   ci,
						Literal:  li,
						Message:  fmt.Sprintf("predicate %q is not a builtin, type extent, derived definition, or catalog function", l.Pred),
						Hint:     "define the function before referencing it, or check the spelling",
					})
				}
				continue
			}
			if len(l.Args) != arity {
				r = append(r, Diagnostic{
					Code:     CodeArityMismatch,
					Severity: Error,
					Pred:     def.Name,
					Clause:   ci,
					Literal:  li,
					Message:  fmt.Sprintf("call to %q with %d arguments, declared with relational arity %d", l.Pred, len(l.Args), arity),
				})
				continue
			}
			for i, tn := range colTypes {
				r = a.bindArg(r, def.Name, ci, li, vars, l, i, tn)
			}
		}
		// Then check builtins against the bound classes.
		for li, l := range c.Body {
			if !objectlog.IsBuiltin(l.Pred) {
				continue
			}
			r = append(r, a.checkBuiltin(def.Name, ci, li, vars, l)...)
		}
	}
	return r
}

// bindArg records the declared type of one literal argument, reporting
// a conflict when the position disagrees with an earlier use of the
// same variable or with a constant's kind.
func (a *Analyzer) bindArg(r Report, pred string, ci, li int, vars map[string]varType, l objectlog.Literal, i int, typeName string) Report {
	cls := classOfTypeName(typeName)
	from := fmt.Sprintf("%s argument %d (%s)", l.Pred, i, typeName)
	arg := l.Args[i]
	if !arg.IsVar {
		if cc := classOfConst(arg.Const); cc != classUnknown && cc != cls {
			r = append(r, Diagnostic{
				Code:     CodeConflictingTypes,
				Severity: Error,
				Pred:     pred,
				Clause:   ci,
				Literal:  li,
				Message:  fmt.Sprintf("constant %s is %s but %s expects %s", arg.Const, cc, from, cls),
			})
		}
		return r
	}
	prev, seen := vars[arg.Var]
	if !seen {
		vars[arg.Var] = varType{class: cls, typeName: typeName, from: from}
		return r
	}
	if prev.class != cls || (cls == clsObject && !a.objectTypesCompatible(prev.typeName, typeName)) {
		r = append(r, Diagnostic{
			Code:     CodeConflictingTypes,
			Severity: Error,
			Pred:     pred,
			Clause:   ci,
			Literal:  li,
			Message:  fmt.Sprintf("variable %s is used as %s and as %s", arg.Var, prev.from, from),
			Hint:     "use distinct variables or align the declared types",
		})
	}
	return r
}

// objectTypesCompatible reports whether two user type names can denote
// the same object: equal, or related by subtyping.
func (a *Analyzer) objectTypesCompatible(t1, t2 string) bool {
	if t1 == t2 || t1 == "" || t2 == "" {
		return true
	}
	if a.cat == nil {
		return true
	}
	ty1, ok1 := a.cat.Type(t1)
	ty2, ok2 := a.cat.Type(t2)
	if !ok1 || !ok2 {
		return true // unknown types: stay quiet
	}
	return ty1.IsSubtypeOf(t2) || ty2.IsSubtypeOf(t1)
}

// checkBuiltin verifies class compatibility of a builtin literal's
// arguments: comparisons need both sides in one class, arithmetic
// needs numeric operands and result.
func (a *Analyzer) checkBuiltin(pred string, ci, li int, vars map[string]varType, l objectlog.Literal) Report {
	classOf := func(t objectlog.Term) (string, string) {
		if t.IsVar {
			if vt, ok := vars[t.Var]; ok {
				return vt.class, fmt.Sprintf("%s (%s)", t.Var, vt.from)
			}
			return classUnknown, t.Var
		}
		return classOfConst(t.Const), t.Const.String()
	}
	var r Report
	switch {
	case objectlog.IsComparison(l.Pred) && len(l.Args) == 2:
		ca, da := classOf(l.Args[0])
		cb, db := classOf(l.Args[1])
		if ca != classUnknown && cb != classUnknown && ca != cb {
			r = append(r, Diagnostic{
				Code:     CodeIncomparable,
				Severity: Error,
				Pred:     pred,
				Clause:   ci,
				Literal:  li,
				Message:  fmt.Sprintf("comparison %s relates %s with %s: values of different type classes never compare equal or ordered", l, da, db),
			})
		}
	case objectlog.IsArithmetic(l.Pred) && len(l.Args) == 3:
		for i, t := range l.Args {
			cls, desc := classOf(t)
			if cls != classUnknown && cls != clsNumeric {
				role := "operand"
				if i == 2 {
					role = "result"
				}
				r = append(r, Diagnostic{
					Code:     CodeIncomparable,
					Severity: Error,
					Pred:     pred,
					Clause:   ci,
					Literal:  li,
					Message:  fmt.Sprintf("arithmetic %s has non-numeric %s %s", l, role, desc),
				})
			}
		}
	}
	return r
}
