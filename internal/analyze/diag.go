package analyze

import (
	"fmt"
	"strings"

	"partdiff/internal/objectlog"
)

// Diagnostic codes. Every layer that rejects a rule condition — the
// analyzer, the expander, the differencing compiler, the evaluator —
// reports the same code for the same defect, so a failure at commit
// time can be reproduced with \lint at definition time.
const (
	// CodeUnsafe (OL001): a clause is not range restricted. Defined in
	// objectlog so the evaluator can report it without importing this
	// package.
	CodeUnsafe = objectlog.CodeUnsafe

	// CodeUnstratifiedNegation (OL002): a predicate negates a member of
	// its own recursive component. Defined in objectlog so the
	// evaluator's fixpoint machinery reports the same code.
	CodeUnstratifiedNegation = objectlog.CodeUnstratifiedNegation

	// CodeUnstratifiedAggregate (OL003): an aggregate view is part of a
	// recursive component (aggregation over its own fixpoint).
	CodeUnstratifiedAggregate = "OL003"

	// CodeUnknownPredicate (OL004): a literal references a predicate
	// that is neither a builtin, a type extent, a derived definition,
	// nor a catalog function / stored relation. Warning severity: the
	// predicate may legitimately be defined later.
	CodeUnknownPredicate = "OL004"

	// CodeArityMismatch (OL005): a literal's argument count differs
	// from the predicate's declared arity.
	CodeArityMismatch = "OL005"

	// CodeConflictingTypes (OL006): a variable (or constant) is used at
	// argument positions with irreconcilable declared types.
	CodeConflictingTypes = "OL006"

	// CodeIncomparable (OL007): a comparison over values of different
	// type classes, or arithmetic over a non-numeric operand.
	CodeIncomparable = "OL007"

	// CodeAnnotatedLiteral (OL101): a definition contains a Δ- or
	// old-annotated literal; differentials must be generated from plain
	// clauses, so such definitions cannot enter the network. Defined in
	// objectlog so the differencing compiler reports the same code.
	CodeAnnotatedLiteral = objectlog.CodeAnnotatedLiteral

	// CodeReevaluated (OL102): the predicate (or an influent of a rule
	// condition) is aggregate or recursive and will be monitored by
	// re-evaluation instead of partial differencing. Informational:
	// correct, but without the paper's incremental cost profile.
	CodeReevaluated = "OL102"

	// CodeDeadClause (OL201): a disjunct is statically empty
	// (contradictory ground literals) and contributes no tuples.
	CodeDeadClause = "OL201"

	// CodeNeverTriggered (OL202): a rule condition references no stored
	// function, so no update can ever change it.
	CodeNeverTriggered = "OL202"

	// CodeDuplicateClause (OL203): two disjuncts of a definition are
	// identical up to variable renaming; the later one is shadowed.
	CodeDuplicateClause = "OL203"

	// CodeUnreachableDelta (OL301): a differential's trigger Δ-set is
	// provably always empty — the change capabilities declared on the
	// base relations (insert-only, delete-only, frozen) never produce
	// the trigger sign at the influent. The differential is pruned from
	// scheduling. Informational: the network stays equivalent, only
	// cheaper.
	CodeUnreachableDelta = "OL301"

	// CodeDeadAcrossViews (OL302): a disjunct is unsatisfiable once
	// constants are propagated interprocedurally through the views it
	// joins — dead like OL201, but only visible after expansion through
	// view composition. Its differentials execute on every influent
	// change and provably produce nothing, so they are pruned. Warning
	// severity: the condition (or part of it) can never hold.
	CodeDeadAcrossViews = "OL302"

	// CodeDuplicateDifferential (OL303): two views compile structurally
	// identical differentials (equal up to variable renaming and head
	// naming) — typically two rules monitoring the same condition.
	// Informational: a shared-subnetwork candidate (`create shared
	// function`, §6 of the paper); nothing is pruned.
	CodeDuplicateDifferential = "OL303"
)

// Severity ranks a diagnostic.
type Severity int

// The severities. Errors make the definition rejectable; warnings are
// suspicious but legal; infos describe monitoring strategy fallbacks.
const (
	Info Severity = iota
	Warning
	Error
)

// String renders the severity.
func (s Severity) String() string {
	switch s {
	case Error:
		return "error"
	case Warning:
		return "warning"
	default:
		return "info"
	}
}

// Diagnostic is one analyzer finding, locatable to a clause (disjunct)
// and body literal of a definition.
type Diagnostic struct {
	Code     string
	Severity Severity
	// Pred is the definition the finding is about.
	Pred string
	// Clause is the disjunct index within the definition, or -1.
	Clause int
	// Literal is the body literal index within the clause, or -1 (e.g.
	// head or whole-definition findings).
	Literal int
	// Message states the defect.
	Message string
	// Hint suggests a fix, when one is known.
	Hint string
}

// String renders "severity[CODE] pred, clause N, literal M: message
// (hint)".
func (d Diagnostic) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s[%s] %s", d.Severity, d.Code, d.Pred)
	if d.Clause >= 0 {
		fmt.Fprintf(&sb, ", clause %d", d.Clause)
	}
	if d.Literal >= 0 {
		fmt.Fprintf(&sb, ", literal %d", d.Literal)
	}
	fmt.Fprintf(&sb, ": %s", d.Message)
	if d.Hint != "" {
		fmt.Fprintf(&sb, " (hint: %s)", d.Hint)
	}
	return sb.String()
}

// Report is an ordered list of diagnostics from one analysis.
type Report []Diagnostic

// HasErrors reports whether any diagnostic has Error severity.
func (r Report) HasErrors() bool {
	for _, d := range r {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// Clean reports whether the report has no errors and no warnings
// (infos allowed).
func (r Report) Clean() bool {
	for _, d := range r {
		if d.Severity >= Warning {
			return false
		}
	}
	return true
}

// Filter returns the diagnostics of exactly the given severity.
func (r Report) Filter(s Severity) Report {
	var out Report
	for _, d := range r {
		if d.Severity == s {
			out = append(out, d)
		}
	}
	return out
}

// Errors returns the Error diagnostics.
func (r Report) Errors() Report { return r.Filter(Error) }

// Warnings returns the Warning diagnostics.
func (r Report) Warnings() Report { return r.Filter(Warning) }

// Err returns nil when the report has no errors, otherwise an error
// rendering the first error diagnostic (and the count of further ones).
func (r Report) Err() error {
	errs := r.Errors()
	if len(errs) == 0 {
		return nil
	}
	if len(errs) == 1 {
		return fmt.Errorf("%s", errs[0])
	}
	return fmt.Errorf("%s (and %d more errors)", errs[0], len(errs)-1)
}

// String renders the report one diagnostic per line.
func (r Report) String() string {
	lines := make([]string, len(r))
	for i, d := range r {
		lines[i] = d.String()
	}
	return strings.Join(lines, "\n")
}
