package types

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetAddRemoveContains(t *testing.T) {
	s := NewSet()
	a := Tuple{Int(1)}
	if !s.Add(a) {
		t.Error("first Add should report true")
	}
	if s.Add(a) {
		t.Error("duplicate Add should report false")
	}
	if s.Len() != 1 || !s.Contains(a) {
		t.Error("set contents after add")
	}
	if !s.Remove(a) {
		t.Error("Remove of present tuple should report true")
	}
	if s.Remove(a) {
		t.Error("Remove of absent tuple should report false")
	}
	if s.Len() != 0 || s.Contains(a) {
		t.Error("set contents after remove")
	}
}

func TestSetNilReceiverSafety(t *testing.T) {
	var s *Set
	if s.Len() != 0 || !s.IsEmpty() || s.Contains(Tuple{Int(1)}) || s.ContainsKey("x") {
		t.Error("nil set should behave as empty")
	}
	s.Each(func(Tuple) bool { t.Error("nil set Each should not call"); return true })
	if s.Remove(Tuple{Int(1)}) {
		t.Error("nil set Remove should be false")
	}
	if s.Clone().Len() != 0 {
		t.Error("nil set Clone should be empty")
	}
	s.Clear() // must not panic
}

func TestSetZeroValueReady(t *testing.T) {
	var s Set
	s.Add(Tuple{Int(1)})
	if s.Len() != 1 {
		t.Error("zero Set should be usable")
	}
}

func TestSetSemanticDedup(t *testing.T) {
	s := NewSet()
	s.Add(Tuple{Int(2)})
	s.Add(Tuple{Float(2.0)}) // Equal to Int(2)
	if s.Len() != 1 {
		t.Errorf("numeric-equal tuples must dedup, len=%d", s.Len())
	}
}

func TestSetTuplesDeterministicOrder(t *testing.T) {
	s := NewSet(Tuple{Int(3)}, Tuple{Int(1)}, Tuple{Int(2)})
	ts := s.Tuples()
	if len(ts) != 3 || ts[0][0].AsInt() != 1 || ts[1][0].AsInt() != 2 || ts[2][0].AsInt() != 3 {
		t.Errorf("Tuples() not sorted: %v", ts)
	}
}

func TestSetCloneIndependent(t *testing.T) {
	s := NewSet(Tuple{Int(1)})
	c := s.Clone()
	c.Add(Tuple{Int(2)})
	if s.Len() != 1 || c.Len() != 2 {
		t.Error("Clone must be independent")
	}
}

func TestSetAddAllRemoveAllEqual(t *testing.T) {
	a := NewSet(Tuple{Int(1)}, Tuple{Int(2)})
	b := NewSet(Tuple{Int(2)}, Tuple{Int(3)})
	u := a.Clone().AddAll(b)
	if u.Len() != 3 {
		t.Errorf("AddAll len=%d", u.Len())
	}
	d := u.Clone().RemoveAll(b)
	if !d.Equal(NewSet(Tuple{Int(1)})) {
		t.Errorf("RemoveAll got %s", d)
	}
	if !a.Equal(NewSet(Tuple{Int(2)}, Tuple{Int(1)})) {
		t.Error("Equal is order-insensitive")
	}
	if a.Equal(b) {
		t.Error("different sets not Equal")
	}
}

func TestSetEachEarlyStop(t *testing.T) {
	s := NewSet(Tuple{Int(1)}, Tuple{Int(2)}, Tuple{Int(3)})
	n := 0
	s.Each(func(Tuple) bool { n++; return false })
	if n != 1 {
		t.Errorf("Each should stop after fn returns false, visited %d", n)
	}
}

func TestSetString(t *testing.T) {
	s := NewSet(Tuple{Int(2)}, Tuple{Int(1)})
	if got := s.String(); got != "{(1), (2)}" {
		t.Errorf("String()=%q", got)
	}
	if NewSet().String() != "{}" {
		t.Error("empty set string")
	}
}

// Property: a Set behaves like a mathematical set under a random
// add/remove script, compared against a reference map implementation.
func TestSetMatchesReferenceModel_Quick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewSet()
		ref := map[string]bool{}
		for i := 0; i < 200; i++ {
			tp := Tuple{Int(int64(r.Intn(20)))}
			k := tp.Key()
			if r.Intn(2) == 0 {
				added := s.Add(tp)
				if added == ref[k] {
					return false // Add reports "newly added" iff not in ref
				}
				ref[k] = true
			} else {
				removed := s.Remove(tp)
				if removed != ref[k] {
					return false
				}
				delete(ref, k)
			}
			if s.Len() != len(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
