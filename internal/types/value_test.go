package types

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if !Nil().IsNil() {
		t.Error("Nil() not nil")
	}
	if Int(7).AsInt() != 7 {
		t.Error("Int accessor")
	}
	if Float(2.5).AsFloat() != 2.5 {
		t.Error("Float accessor")
	}
	if Str("abc").S != "abc" {
		t.Error("Str accessor")
	}
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Error("Bool accessor")
	}
	if Obj(42).O != 42 {
		t.Error("Obj accessor")
	}
	if Int(3).AsFloat() != 3.0 {
		t.Error("int-to-float coercion")
	}
	if Float(3.9).AsInt() != 3 {
		t.Error("float-to-int truncation")
	}
}

func TestValueEqualCoercesNumerics(t *testing.T) {
	if !Int(2).Equal(Float(2.0)) {
		t.Error("Int(2) should equal Float(2.0)")
	}
	if Int(2).Equal(Float(2.5)) {
		t.Error("Int(2) should not equal Float(2.5)")
	}
	if Int(2).Equal(Str("2")) {
		t.Error("int should not equal string")
	}
	if !Str("x").Equal(Str("x")) || Str("x").Equal(Str("y")) {
		t.Error("string equality")
	}
	if !Obj(1).Equal(Obj(1)) || Obj(1).Equal(Obj(2)) {
		t.Error("object equality")
	}
	if !Nil().Equal(Nil()) {
		t.Error("nil equality")
	}
	if !Bool(true).Equal(Bool(true)) || Bool(true).Equal(Bool(false)) {
		t.Error("bool equality")
	}
}

func TestValueCompareTotalOrder(t *testing.T) {
	ordered := []Value{
		Nil(), Bool(false), Bool(true),
		Int(-5), Float(-1.5), Int(0), Float(0.5), Int(1), Int(2),
		Str("a"), Str("b"),
		Obj(1), Obj(2),
	}
	for i := range ordered {
		for j := range ordered {
			got := ordered[i].Compare(ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%s,%s)=%d want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
	if Int(2).Compare(Float(2.0)) != 0 {
		t.Error("numeric cross-kind compare should be 0 for equal values")
	}
}

func TestValueKeyInjective(t *testing.T) {
	distinct := []Value{
		Nil(), Bool(false), Bool(true), Int(0), Int(1), Int(-1),
		Float(0.5), Float(-0.5), Str(""), Str("a"), Str("ab"),
		Obj(0), Obj(1), Str("I"), Str("N"),
	}
	seen := map[string]Value{}
	for _, v := range distinct {
		k := v.Key()
		if prev, ok := seen[k]; ok {
			t.Errorf("key collision between %s and %s", prev, v)
		}
		seen[k] = v
	}
}

func TestValueKeyNumericNormalization(t *testing.T) {
	if Int(2).Key() != Float(2.0).Key() {
		t.Error("Int(2) and Float(2.0) must share a key (Equal values)")
	}
	if Int(2).Key() == Float(2.5).Key() {
		t.Error("distinct values must have distinct keys")
	}
}

func TestValueKeyEqualConsistency_Quick(t *testing.T) {
	// Property: for int/float pairs, Equal(v,w) iff Key(v)==Key(w).
	f := func(a int64, b float64) bool {
		v, w := Int(a), Float(b)
		return v.Equal(w) == (v.Key() == w.Key())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueString(t *testing.T) {
	cases := map[string]Value{
		"nil":   Nil(),
		"true":  Bool(true),
		"false": Bool(false),
		"42":    Int(42),
		"2.5":   Float(2.5),
		`"hi"`:  Str("hi"),
		"#7":    Obj(7),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String()=%q want %q", got, want)
		}
	}
}

func TestArithmetic(t *testing.T) {
	check := func(got Value, err error, want Value) {
		t.Helper()
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		if !got.Equal(want) {
			t.Errorf("got %s want %s", got, want)
		}
	}
	v, err := Add(Int(2), Int(3))
	check(v, err, Int(5))
	v, err = Sub(Int(2), Int(3))
	check(v, err, Int(-1))
	v, err = Mul(Int(4), Int(3))
	check(v, err, Int(12))
	v, err = Div(Int(7), Int(2))
	check(v, err, Int(3)) // truncating integer division
	v, err = Add(Int(2), Float(0.5))
	check(v, err, Float(2.5))
	v, err = Div(Float(1), Float(4))
	check(v, err, Float(0.25))

	if _, err := Div(Int(1), Int(0)); err == nil {
		t.Error("integer division by zero should error")
	}
	if _, err := Div(Float(1), Float(0)); err == nil {
		t.Error("float division by zero should error")
	}
	if _, err := Add(Str("a"), Int(1)); err == nil {
		t.Error("arithmetic on string should error")
	}
}

func TestFloatKeyNonIntegral(t *testing.T) {
	// Non-integral and huge floats still get stable injective keys.
	vals := []Value{Float(math.Pi), Float(-math.Pi), Float(1e300), Float(-1e300)}
	seen := map[string]bool{}
	for _, v := range vals {
		k := v.Key()
		if seen[k] {
			t.Errorf("collision for %s", v)
		}
		seen[k] = true
		if k != v.Key() {
			t.Error("key not stable")
		}
	}
}
