package types

import "strings"

// Tuple is an ordered list of values — one row of a relation.
type Tuple []Value

// Key returns a canonical injective encoding of the tuple (including its
// arity), suitable for use as a map key in tuple sets.
func (t Tuple) Key() string {
	var b []byte
	b = appendUint64(b, uint64(len(t)))
	for _, v := range t {
		b = v.AppendKey(b)
	}
	return string(b)
}

// Equal reports whether t and u have the same arity and pairwise Equal
// values.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !t[i].Equal(u[i]) {
			return false
		}
	}
	return true
}

// Compare lexicographically orders tuples (shorter tuples order first on a
// shared prefix).
func (t Tuple) Compare(u Tuple) int {
	n := len(t)
	if len(u) < n {
		n = len(u)
	}
	for i := 0; i < n; i++ {
		if c := t[i].Compare(u[i]); c != 0 {
			return c
		}
	}
	return cmpInt64(int64(len(t)), int64(len(u)))
}

// Clone returns a copy of t that shares no backing storage.
func (t Tuple) Clone() Tuple {
	if t == nil {
		return nil
	}
	u := make(Tuple, len(t))
	copy(u, t)
	return u
}

// Project returns the tuple of the columns of t at the given indexes.
func (t Tuple) Project(cols []int) Tuple {
	u := make(Tuple, len(cols))
	for i, c := range cols {
		u[i] = t[c]
	}
	return u
}

// Concat returns the concatenation of t and u as a new tuple.
func (t Tuple) Concat(u Tuple) Tuple {
	r := make(Tuple, 0, len(t)+len(u))
	r = append(r, t...)
	r = append(r, u...)
	return r
}

// String renders the tuple as (v1, v2, ...).
func (t Tuple) String() string {
	var sb strings.Builder
	sb.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(v.String())
	}
	sb.WriteByte(')')
	return sb.String()
}
