package types

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTupleKeyDistinguishesArity(t *testing.T) {
	a := Tuple{Int(1), Int(2)}
	b := Tuple{Int(1)}
	c := Tuple{Int(1), Int(2), Int(3)}
	keys := map[string]bool{a.Key(): true, b.Key(): true, c.Key(): true}
	if len(keys) != 3 {
		t.Error("tuples of different arity must have distinct keys")
	}
}

func TestTupleKeyNoConcatAmbiguity(t *testing.T) {
	// ("ab","c") vs ("a","bc") must not collide.
	a := Tuple{Str("ab"), Str("c")}
	b := Tuple{Str("a"), Str("bc")}
	if a.Key() == b.Key() {
		t.Error("string concatenation ambiguity in tuple key")
	}
}

func TestTupleEqualAndCompare(t *testing.T) {
	a := Tuple{Int(1), Str("x")}
	b := Tuple{Int(1), Str("x")}
	c := Tuple{Int(1), Str("y")}
	if !a.Equal(b) || a.Equal(c) {
		t.Error("tuple equality")
	}
	if a.Compare(b) != 0 || a.Compare(c) != -1 || c.Compare(a) != 1 {
		t.Error("tuple compare")
	}
	short := Tuple{Int(1)}
	if short.Compare(a) != -1 || a.Compare(short) != 1 {
		t.Error("prefix tuples order first")
	}
	if !(Tuple{Int(2)}).Equal(Tuple{Float(2.0)}) {
		t.Error("numeric coercion in tuple equality")
	}
}

func TestTupleCloneIndependence(t *testing.T) {
	a := Tuple{Int(1), Int(2)}
	b := a.Clone()
	b[0] = Int(99)
	if a[0].AsInt() != 1 {
		t.Error("Clone must not share storage")
	}
	if Tuple(nil).Clone() != nil {
		t.Error("nil clone is nil")
	}
}

func TestTupleProjectConcat(t *testing.T) {
	a := Tuple{Int(10), Int(20), Int(30)}
	p := a.Project([]int{2, 0})
	if !p.Equal(Tuple{Int(30), Int(10)}) {
		t.Errorf("Project got %s", p)
	}
	c := Tuple{Int(1)}.Concat(Tuple{Int(2), Int(3)})
	if !c.Equal(Tuple{Int(1), Int(2), Int(3)}) {
		t.Errorf("Concat got %s", c)
	}
}

func TestTupleString(t *testing.T) {
	if got := (Tuple{Int(1), Str("a")}).String(); got != `(1, "a")` {
		t.Errorf("String()=%q", got)
	}
}

func randomTuple(r *rand.Rand) Tuple {
	n := r.Intn(4)
	tp := make(Tuple, n)
	for i := range tp {
		switch r.Intn(4) {
		case 0:
			tp[i] = Int(int64(r.Intn(10)))
		case 1:
			tp[i] = Float(float64(r.Intn(10)) / 2)
		case 2:
			tp[i] = Str(string(rune('a' + r.Intn(3))))
		default:
			tp[i] = Obj(OID(r.Intn(5)))
		}
	}
	return tp
}

func TestTupleKeyEqualConsistency_Quick(t *testing.T) {
	// Property: Equal(t,u) iff Key(t)==Key(u), for random small tuples.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomTuple(r), randomTuple(r)
		return a.Equal(b) == (a.Key() == b.Key())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
