package types

import (
	"sort"
	"strings"
)

// Set is a set of tuples (set-oriented semantics: no duplicates).
// The zero Set is empty and ready to use.
type Set struct {
	m map[string]Tuple
}

// NewSet returns an empty set, optionally seeded with tuples.
func NewSet(tuples ...Tuple) *Set {
	s := &Set{}
	for _, t := range tuples {
		s.Add(t)
	}
	return s
}

// Len returns the number of tuples in the set. Safe on a nil receiver.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return len(s.m)
}

// IsEmpty reports whether the set has no tuples. Safe on a nil receiver.
func (s *Set) IsEmpty() bool { return s.Len() == 0 }

// Add inserts t into the set; it reports whether the tuple was newly
// added (false if it was already present).
func (s *Set) Add(t Tuple) bool {
	if s.m == nil {
		s.m = make(map[string]Tuple)
	}
	k := t.Key()
	if _, ok := s.m[k]; ok {
		return false
	}
	s.m[k] = t
	return true
}

// Remove deletes t from the set; it reports whether the tuple was present.
func (s *Set) Remove(t Tuple) bool {
	if s == nil || s.m == nil {
		return false
	}
	k := t.Key()
	if _, ok := s.m[k]; !ok {
		return false
	}
	delete(s.m, k)
	return true
}

// Contains reports whether t is in the set. Safe on a nil receiver.
func (s *Set) Contains(t Tuple) bool {
	if s == nil || s.m == nil {
		return false
	}
	_, ok := s.m[t.Key()]
	return ok
}

// ContainsKey reports whether a tuple with the given canonical key is in
// the set. Safe on a nil receiver.
func (s *Set) ContainsKey(key string) bool {
	if s == nil || s.m == nil {
		return false
	}
	_, ok := s.m[key]
	return ok
}

// Each calls fn for every tuple; iteration stops if fn returns false.
// Safe on a nil receiver. The iteration order is unspecified.
func (s *Set) Each(fn func(Tuple) bool) {
	if s == nil {
		return
	}
	for _, t := range s.m {
		if !fn(t) {
			return
		}
	}
}

// Tuples returns the tuples in deterministic (sorted) order.
func (s *Set) Tuples() []Tuple {
	if s == nil {
		return nil
	}
	out := make([]Tuple, 0, len(s.m))
	for _, t := range s.m {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Clone returns an independent copy of the set (tuples are shared; they
// are treated as immutable).
func (s *Set) Clone() *Set {
	c := &Set{}
	if s == nil || len(s.m) == 0 {
		return c
	}
	c.m = make(map[string]Tuple, len(s.m))
	for k, t := range s.m {
		c.m[k] = t
	}
	return c
}

// AddAll inserts every tuple of o into s and returns s.
func (s *Set) AddAll(o *Set) *Set {
	o.Each(func(t Tuple) bool {
		s.Add(t)
		return true
	})
	return s
}

// RemoveAll removes every tuple of o from s and returns s.
func (s *Set) RemoveAll(o *Set) *Set {
	o.Each(func(t Tuple) bool {
		s.Remove(t)
		return true
	})
	return s
}

// Equal reports whether s and o contain exactly the same tuples.
func (s *Set) Equal(o *Set) bool {
	if s.Len() != o.Len() {
		return false
	}
	eq := true
	s.Each(func(t Tuple) bool {
		if !o.Contains(t) {
			eq = false
			return false
		}
		return true
	})
	return eq
}

// Clear removes all tuples.
func (s *Set) Clear() {
	if s != nil {
		s.m = nil
	}
}

// String renders the set in deterministic order: {(..), (..)}.
func (s *Set) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, t := range s.Tuples() {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(t.String())
	}
	sb.WriteByte('}')
	return sb.String()
}
