package types

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Algebraic laws of the total order on values, checked over random
// value pools. The set container, index keys and deterministic result
// ordering all depend on these.

func randomValue(r *rand.Rand) Value {
	switch r.Intn(6) {
	case 0:
		return Nil()
	case 1:
		return Bool(r.Intn(2) == 0)
	case 2:
		return Int(int64(r.Intn(9) - 4))
	case 3:
		return Float(float64(r.Intn(9)-4) / 2)
	case 4:
		return Str(string(rune('a' + r.Intn(3))))
	default:
		return Obj(OID(r.Intn(4)))
	}
}

func TestCompare_Antisymmetry_Quick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomValue(r), randomValue(r)
		return a.Compare(b) == -b.Compare(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestCompare_Transitivity_Quick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randomValue(r), randomValue(r), randomValue(r)
		if a.Compare(b) <= 0 && b.Compare(c) <= 0 {
			return a.Compare(c) <= 0
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestCompare_ConsistentWithEqual_Quick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomValue(r), randomValue(r)
		return (a.Compare(b) == 0) == a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestTupleCompare_ConsistentWithEqual_Quick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomTuple(r), randomTuple(r)
		return (a.Compare(b) == 0) == a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}
