// Package types provides the value model shared by every layer of the
// system: scalar values, object identifiers, tuples, and tuple sets with
// set-oriented semantics.
//
// The data model follows the functional model of AMOS (Daplex/Iris):
// everything is an object, scalar values are immutable, and relations are
// sets of tuples of values. Set-oriented semantics (no duplicates) is
// assumed throughout, as in §7.2 of the paper.
package types

import (
	"fmt"
	"math"
	"strconv"
)

// Kind discriminates the runtime type of a Value.
type Kind uint8

// The supported value kinds.
const (
	KindNil Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindObject
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNil:
		return "nil"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindObject:
		return "object"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// OID identifies a database object (an instance of a user type).
// OIDs are allocated by the catalog and never reused.
type OID uint64

// Value is a tagged scalar. The zero Value is the nil value.
// Values are comparable with == only within this package's helpers;
// use Equal for semantic equality (it coerces int/float).
type Value struct {
	Kind Kind
	I    int64   // KindInt, KindBool (0/1)
	F    float64 // KindFloat
	S    string  // KindString
	O    OID     // KindObject
}

// Nil returns the nil value.
func Nil() Value { return Value{} }

// Int returns an integer value.
func Int(i int64) Value { return Value{Kind: KindInt, I: i} }

// Float returns a floating point value.
func Float(f float64) Value { return Value{Kind: KindFloat, F: f} }

// Str returns a string value.
func Str(s string) Value { return Value{Kind: KindString, S: s} }

// Bool returns a boolean value.
func Bool(b bool) Value {
	v := Value{Kind: KindBool}
	if b {
		v.I = 1
	}
	return v
}

// Obj returns an object reference value.
func Obj(o OID) Value { return Value{Kind: KindObject, O: o} }

// IsNil reports whether v is the nil value.
func (v Value) IsNil() bool { return v.Kind == KindNil }

// AsBool reports the truth of a bool value (false for any other kind).
func (v Value) AsBool() bool { return v.Kind == KindBool && v.I != 0 }

// AsInt returns the value as int64, truncating floats.
func (v Value) AsInt() int64 {
	switch v.Kind {
	case KindInt, KindBool:
		return v.I
	case KindFloat:
		return int64(v.F)
	default:
		return 0
	}
}

// AsFloat returns the value as float64.
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case KindInt, KindBool:
		return float64(v.I)
	case KindFloat:
		return v.F
	default:
		return 0
	}
}

// IsNumeric reports whether v is an int or float.
func (v Value) IsNumeric() bool { return v.Kind == KindInt || v.Kind == KindFloat }

// Equal reports semantic equality. Ints and floats compare numerically
// (Int(2) equals Float(2.0)); other kinds must match exactly.
func (v Value) Equal(w Value) bool {
	if v.Kind == w.Kind {
		switch v.Kind {
		case KindNil:
			return true
		case KindBool, KindInt:
			return v.I == w.I
		case KindFloat:
			return v.F == w.F
		case KindString:
			return v.S == w.S
		case KindObject:
			return v.O == w.O
		}
	}
	if v.IsNumeric() && w.IsNumeric() {
		return v.AsFloat() == w.AsFloat()
	}
	return false
}

// Compare totally orders values: first by kind class (nil < bool < numeric
// < string < object), then by value. Numeric values of different kinds
// compare numerically.
func (v Value) Compare(w Value) int {
	vc, wc := v.kindClass(), w.kindClass()
	if vc != wc {
		if vc < wc {
			return -1
		}
		return 1
	}
	switch vc {
	case classNil:
		return 0
	case classBool:
		return cmpInt64(v.I, w.I)
	case classNumeric:
		if v.Kind == KindInt && w.Kind == KindInt {
			return cmpInt64(v.I, w.I)
		}
		a, b := v.AsFloat(), w.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	case classString:
		switch {
		case v.S < w.S:
			return -1
		case v.S > w.S:
			return 1
		default:
			return 0
		}
	default: // classObject
		return cmpInt64(int64(v.O), int64(w.O))
	}
}

const (
	classNil = iota
	classBool
	classNumeric
	classString
	classObject
)

func (v Value) kindClass() int {
	switch v.Kind {
	case KindNil:
		return classNil
	case KindBool:
		return classBool
	case KindInt, KindFloat:
		return classNumeric
	case KindString:
		return classString
	default:
		return classObject
	}
}

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// String renders the value for display.
func (v Value) String() string {
	switch v.Kind {
	case KindNil:
		return "nil"
	case KindBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.S)
	case KindObject:
		return fmt.Sprintf("#%d", uint64(v.O))
	default:
		return "?"
	}
}

// AppendKey appends a canonical, injective byte encoding of v to dst.
// Two values encode identically iff they are Equal. Numeric values are
// normalized so Int(2) and Float(2.0) share an encoding.
func (v Value) AppendKey(dst []byte) []byte {
	switch v.Kind {
	case KindNil:
		return append(dst, 'N')
	case KindBool:
		if v.I != 0 {
			return append(dst, 'T')
		}
		return append(dst, 'F')
	case KindInt, KindFloat:
		// Normalize: integral floats encode as ints.
		if v.Kind == KindFloat {
			if f := v.F; f == math.Trunc(f) && f >= math.MinInt64 && f <= math.MaxInt64 {
				dst = append(dst, 'I')
				return appendUint64(dst, uint64(int64(f)))
			}
			dst = append(dst, 'D')
			return appendUint64(dst, math.Float64bits(v.F))
		}
		dst = append(dst, 'I')
		return appendUint64(dst, uint64(v.I))
	case KindString:
		dst = append(dst, 'S')
		dst = appendUint64(dst, uint64(len(v.S)))
		return append(dst, v.S...)
	case KindObject:
		dst = append(dst, 'O')
		return appendUint64(dst, uint64(v.O))
	default:
		return append(dst, '?')
	}
}

func appendUint64(dst []byte, u uint64) []byte {
	return append(dst,
		byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
		byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
}

// Key returns the canonical encoding of v as a string, suitable for use
// as a map key.
func (v Value) Key() string { return string(v.AppendKey(nil)) }

// Arithmetic. All four operations coerce int/float: the result is an int
// only when both operands are ints (except Div, which is float unless both
// are ints and divide evenly... no: integer division truncates as in the
// paper's integer model).

// Add returns v + w.
func Add(v, w Value) (Value, error) { return arith(v, w, '+') }

// Sub returns v - w.
func Sub(v, w Value) (Value, error) { return arith(v, w, '-') }

// Mul returns v * w.
func Mul(v, w Value) (Value, error) { return arith(v, w, '*') }

// Div returns v / w. Integer operands use truncating division;
// division by zero is an error.
func Div(v, w Value) (Value, error) { return arith(v, w, '/') }

func arith(v, w Value, op byte) (Value, error) {
	if !v.IsNumeric() || !w.IsNumeric() {
		return Value{}, fmt.Errorf("arithmetic %c on non-numeric values %s, %s", op, v, w)
	}
	if v.Kind == KindInt && w.Kind == KindInt {
		a, b := v.I, w.I
		switch op {
		case '+':
			return Int(a + b), nil
		case '-':
			return Int(a - b), nil
		case '*':
			return Int(a * b), nil
		default:
			if b == 0 {
				return Value{}, fmt.Errorf("division by zero")
			}
			return Int(a / b), nil
		}
	}
	a, b := v.AsFloat(), w.AsFloat()
	switch op {
	case '+':
		return Float(a + b), nil
	case '-':
		return Float(a - b), nil
	case '*':
		return Float(a * b), nil
	default:
		if b == 0 {
			return Value{}, fmt.Errorf("division by zero")
		}
		return Float(a / b), nil
	}
}
