package partdiff_test

import (
	"fmt"

	"partdiff"
)

// The paper's running example: order new items when stock drops below
// a derived threshold.
func Example() {
	db := partdiff.Open()
	db.RegisterProcedure("order", func(args []partdiff.Value) error {
		fmt.Printf("order %d units of %s\n", args[1].AsInt(), args[0])
		return nil
	})
	db.MustExec(`
create type item;
create function quantity(item) -> integer;
create function max_stock(item) -> integer;
create function reorder_at(item) -> integer;
create rule refill() as
    when for each item i where quantity(i) < reorder_at(i)
    do order(i, max_stock(i) - quantity(i));
create item instances :widget;
set quantity(:widget) = 100;
set max_stock(:widget) = 100;
set reorder_at(:widget) = 25;
activate refill();
set quantity(:widget) = 10;
set quantity(:widget) = 5;
`)
	// Strict semantics: only the first crossing fires.
	// Output:
	// order 90 units of #1
}

// Deferred semantics: conditions are monitored over the net changes of
// a transaction, so a dip that recovers before commit never fires.
func ExampleDB_Commit() {
	db := partdiff.Open()
	db.RegisterProcedure("alert", func(args []partdiff.Value) error {
		fmt.Println("alert for", args[0])
		return nil
	})
	db.MustExec(`
create type sensor;
create function value(sensor) -> integer;
create rule high() as
    when for each sensor s where value(s) > 90
    do alert(s);
create sensor instances :s;
set value(:s) = 10;
activate high();
begin;
set value(:s) = 99;
set value(:s) = 20;
commit;
`)
	fmt.Println("no alert after the transient spike")
	// Output:
	// no alert after the transient spike
}

// Explanations identify which influent triggered a rule and whether by
// insertion or deletion.
func ExampleDB_Explanations() {
	db := partdiff.Open()
	db.RegisterProcedure("noop", func([]partdiff.Value) error { return nil })
	db.MustExec(`
create type doc;
create function approved(doc) -> boolean;
create function published(doc) -> boolean;
create rule unapproved() as
    when for each doc d where published(d) = true and not approved(d) = true
    do noop(d);
create doc instances :d1;
set approved(:d1) = true;
set published(:d1) = true;
activate unapproved();
remove approved(:d1) = true;
`)
	for _, e := range db.Explanations() {
		for _, entry := range e.Entries {
			fmt.Printf("rule %s triggered via %s of %s\n",
				e.Rule, signWord(entry.TriggerSign.String()), entry.Influent)
		}
	}
	// Output:
	// rule unapproved triggered via deletion of approved
}

func signWord(s string) string {
	if s == "Δ-" {
		return "deletion"
	}
	return "insertion"
}

// Aggregate and recursive views are monitored by re-evaluation inside
// the propagation network.
func ExampleDB_Query() {
	db := partdiff.Open()
	db.MustExec(`
create type emp;
create function salary(emp) -> integer;
create emp instances :a, :b, :c;
set salary(:a) = 100;
set salary(:b) = 150;
set salary(:c) = 150;
`)
	r, _ := db.Query(`select sum(salary(e)) for each emp e;`)
	fmt.Println("total payroll:", r.Tuples[0][0])
	r, _ = db.Query(`select count(e) for each emp e where salary(e) > 120;`)
	fmt.Println("well paid:", r.Tuples[0][0])
	// Output:
	// total payroll: 400
	// well paid: 2
}
