package partdiff_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"partdiff"
)

// obsDB builds a monitored inventory in a durable data directory and
// runs one transaction that fires the rule, so every subsystem —
// including the write-ahead log — has counted work.
func obsDB(t *testing.T) *partdiff.DB {
	t.Helper()
	db, err := partdiff.OpenDir(t.TempDir(),
		partdiff.WithProcedure("order", func([]partdiff.Value) error { return nil }))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	db.MustExec(`
create type item;
create function quantity(item) -> integer;
create function reorder_at(item) -> integer;
create rule refill() as
    when for each item i where quantity(i) < reorder_at(i)
    do order(i);
create item instances :a, :b;
set quantity(:a) = 100;
set quantity(:b) = 100;
set reorder_at(:a) = 25;
set reorder_at(:b) = 25;
activate refill();
`)
	return db
}

// chromeDoc mirrors the Chrome trace_event JSON object format.
type chromeDoc struct {
	TraceEvents []struct {
		Name string            `json:"name"`
		Cat  string            `json:"cat"`
		Ph   string            `json:"ph"`
		Pid  int               `json:"pid"`
		Tid  int               `json:"tid"`
		Args map[string]string `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// TestTraceExportsChromeJSON is the tracing acceptance test: a traced
// check phase must export valid Chrome trace_event JSON containing
// spans for the commit, the propagation run, and the individual partial
// differentials with their view/influent/sign attribution.
func TestTraceExportsChromeJSON(t *testing.T) {
	db := obsDB(t)
	tr := db.StartTrace()
	db.MustExec(`
begin;
set quantity(:a) = 10;
set quantity(:b) = 90;
commit;
`)
	tr.Stop()
	if tr.Len() == 0 {
		t.Fatal("traced commit captured no events")
	}
	var buf bytes.Buffer
	if err := tr.Export(&buf); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	var commit, propagate, round bool
	var differentials []string
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" && e.Ph != "i" {
			t.Errorf("unexpected event phase %q in %+v", e.Ph, e)
		}
		switch {
		case e.Cat == "txn" && e.Name == "commit" && e.Ph == "X":
			commit = true
		case e.Cat == "propnet" && e.Name == "propagate" && e.Ph == "X":
			propagate = true
		case e.Cat == "rules" && e.Name == "check_round" && e.Ph == "X":
			round = true
		case e.Cat == "propnet" && strings.Contains(e.Name, "/Δ"):
			if e.Args["view"] == "" || e.Args["influent"] != "quantity" {
				t.Errorf("differential span missing attribution: %+v", e)
			}
			differentials = append(differentials, e.Name)
		}
	}
	if !commit || !propagate || !round {
		t.Errorf("missing spans: commit=%v propagate=%v check_round=%v", commit, propagate, round)
	}
	if len(differentials) == 0 {
		t.Errorf("no partial-differential spans in export:\n%s", buf.String())
	}

	// After Stop, further work must not grow the capture.
	n := tr.Len()
	db.MustExec(`set quantity(:a) = 80;`)
	if tr.Len() != n {
		t.Error("trace capture grew after Stop")
	}
}

// TestMetricsEndpoint is the metrics acceptance test: GET /metrics must
// serve Prometheus text including at least one counter from every
// instrumented subsystem with work recorded.
func TestMetricsEndpoint(t *testing.T) {
	db := obsDB(t)
	db.MustExec(`
begin;
set quantity(:a) = 10;
commit;
`)
	srv := httptest.NewServer(db.MonitorHandler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	text := string(body)
	for _, counter := range []string{
		"partdiff_storage_tuple_inserts_total", // storage
		"partdiff_eval_tuples_scanned_total",   // eval
		"partdiff_propnet_differentials_total", // propnet
		"partdiff_txn_commits_total",           // txn
		"partdiff_rules_actions_total",         // rules
		"partdiff_wal_appends_total",           // wal
	} {
		idx := strings.Index(text, "\n"+counter+" ")
		if idx < 0 {
			t.Errorf("/metrics missing %s", counter)
			continue
		}
		var v float64
		line := text[idx+1:]
		if nl := strings.IndexByte(line, '\n'); nl >= 0 {
			line = line[:nl]
		}
		if _, err := fmt.Sscanf(line, counter+" %g", &v); err != nil || v <= 0 {
			t.Errorf("%s: want positive value, got %q (err %v)", counter, line, err)
		}
	}
	if !strings.Contains(text, "# TYPE partdiff_txn_commit_seconds histogram") {
		t.Error("/metrics missing commit latency histogram")
	}

	// expvar surface serves JSON.
	resp, err = http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	vars, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var parsed map[string]any
	if err := json.Unmarshal(vars, &parsed); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
}

// TestServeMonitorLoopback exercises the real listener path behind the
// amos -monitor flag.
func TestServeMonitorLoopback(t *testing.T) {
	db := obsDB(t)
	srv, err := db.ServeMonitor("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "partdiff_rules_activations_total") {
		t.Error("live endpoint missing rules activation counter")
	}
}

// TestStatsMatchesRegistry pins the compatibility view: DB.Stats() and
// the registry must agree on the monitor counters.
func TestStatsMatchesRegistry(t *testing.T) {
	db := obsDB(t)
	db.MustExec(`
begin;
set quantity(:a) = 10;
commit;
`)
	st := db.Stats()
	reg := db.Observability().Registry
	if got := reg.CounterValue("partdiff_rules_actions_total"); got != int64(st.ActionsExecuted) {
		t.Errorf("actions: registry %d, stats %d", got, st.ActionsExecuted)
	}
	if got := reg.CounterValue("partdiff_rules_differentials_total"); got != int64(st.DifferentialsExecuted) {
		t.Errorf("differentials: registry %d, stats %d", got, st.DifferentialsExecuted)
	}
	db.ResetStats()
	if db.Stats() != (partdiff.Stats{}) {
		t.Error("ResetStats did not zero the view")
	}
}
