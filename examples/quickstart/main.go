// Quickstart: the paper's §3.1 inventory example, end to end.
//
// An item's quantity is monitored against a derived threshold
// (consume_freq * delivery_time + min_stock). When stock drops below
// the threshold, the monitor_items rule orders a refill — exactly once
// per low-stock episode (strict semantics), no matter how many further
// updates occur while the item stays low.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"partdiff"
)

func main() {
	db := partdiff.Open()
	db.SetOutput(os.Stdout)

	// The action procedure — in AMOS a foreign function in Lisp or C,
	// here a Go function.
	if err := db.RegisterProcedure("order", func(args []partdiff.Value) error {
		fmt.Printf("  >> ordering %d units of item %s\n", args[1].AsInt(), args[0])
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	// Schema, rule, and population — verbatim from §3.1 of the paper.
	if _, err := db.Exec(`
create type item;
create type supplier;
create function quantity(item) -> integer;
create function max_stock(item) -> integer;
create function min_stock(item) -> integer;
create function consume_freq(item) -> integer;
create function supplies(supplier) -> item;
create function delivery_time(item i, supplier s) -> integer;
create function threshold(item i) -> integer
    as
    select consume_freq(i) * delivery_time(i, s) + min_stock(i)
    for each supplier s where supplies(s) = i;

create rule monitor_items() as
     when for each item i
     where quantity(i) < threshold(i)
     do order(i, max_stock(i) - quantity(i));

create item instances :item1, :item2;
set max_stock(:item1) = 5000;
set max_stock(:item2) = 7500;
set min_stock(:item1) = 100;
set min_stock(:item2) = 200;
set consume_freq(:item1) = 20;
set consume_freq(:item2) = 30;
create supplier instances :sup1, :sup2;
set supplies(:sup1) = :item1;
set supplies(:sup2) = :item2;
set delivery_time(:item1, :sup1) = 2;
set delivery_time(:item2, :sup2) = 3;
set quantity(:item1) = 5000;
set quantity(:item2) = 7500;
activate monitor_items();
`); err != nil {
		log.Fatal(err)
	}

	r, err := db.Query(`select i, threshold(i) for each item i;`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("thresholds (item1 should be 140, item2 should be 290):")
	for _, t := range r.Tuples {
		fmt.Printf("  item %s -> %s\n", t[0], t[1])
	}

	fmt.Println("\nconsuming item1 stock: 5000 -> 200 (above threshold, no order)")
	db.MustExec(`set quantity(:item1) = 200;`)

	fmt.Println("consuming item1 stock: 200 -> 120 (below threshold 140!)")
	db.MustExec(`set quantity(:item1) = 120;`)

	fmt.Println("consuming further: 120 -> 110 (still low, strict semantics: no re-order)")
	db.MustExec(`set quantity(:item1) = 110;`)

	fmt.Println("\na transient dip inside one transaction never triggers (deferred rules):")
	db.MustExec(`begin; set quantity(:item2) = 10; set quantity(:item2) = 7500; commit;`)
	fmt.Println("  (item2 dipped to 10 and recovered before commit — no order)")

	fmt.Println("\nraising min_stock(item2) so the THRESHOLD crosses the quantity:")
	db.MustExec(`set quantity(:item2) = 7000;`)  // above threshold 290: no order
	db.MustExec(`set min_stock(:item2) = 6950;`) // threshold becomes 7040 > 7000

	s := db.Stats()
	fmt.Printf("\nmonitor statistics: %d propagations, %d partial differentials executed, %d actions\n",
		s.Propagations, s.DifferentialsExecuted, s.ActionsExecuted)
}
