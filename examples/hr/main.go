// HR monitoring: aggregates, recursion and ECA events — the three
// extensions the paper lists as refinements/future work (§7, §8), all
// active in one schema.
//
//   - payroll(d) is an AGGREGATE view (sum of salaries): monitored by
//     re-evaluation inside the propagation network, while the rules
//     above it stay incremental.
//   - chain_of(e) is a RECURSIVE view (management chain): re-evaluated
//     by fixpoint when reports_to changes.
//   - budget_watch is an ECA rule: it only reacts to salary updates,
//     not to budget changes.
//
// Run: go run ./examples/hr
package main

import (
	"fmt"
	"log"

	"partdiff"
)

func main() {
	db := partdiff.Open()

	db.RegisterProcedure("over_budget", func(args []partdiff.Value) error {
		fmt.Printf("  >> OVER BUDGET: department %s (payroll %s > budget %s)\n",
			args[0], args[1], args[2])
		return nil
	})
	db.RegisterProcedure("audit", func(args []partdiff.Value) error {
		fmt.Printf("  >> audit: employee %s is now in the CFO's chain\n", args[0])
		return nil
	})

	if _, err := db.Exec(`
create type department;
create type employee;
create function budget(department) -> integer;
create function salary(employee) -> integer;
create function dept(employee) -> department;
create function reports_to(employee) -> employee;

-- Aggregate view: total salary per department.
create function payroll(department d) -> integer
    as select sum(salary(e)) for each employee e where dept(e) = d;

-- Recursive view: everyone above e in the reporting chain.
create function chain_of(employee e) -> employee
    as select m for each employee m
    where reports_to(e) = m or chain_of(reports_to(e)) = m;

-- ECA: test the budget condition only when salaries change.
create rule budget_watch() as
    on salary
    when for each department d where payroll(d) > budget(d)
    do over_budget(d, payroll(d), budget(d));

create rule chain_audit(employee boss) as
    when for each employee e where chain_of(e) = boss
    do audit(e);
`); err != nil {
		log.Fatal(err)
	}

	db.MustExec(`
create department instances :rnd;
set budget(:rnd) = 500;
create employee instances :cfo, :lead, :dev1, :dev2;
set dept(:lead) = :rnd;
set dept(:dev1) = :rnd;
set dept(:dev2) = :rnd;
set salary(:lead) = 200;
set salary(:dev1) = 150;
set salary(:dev2) = 150;
set reports_to(:lead) = :cfo;
set reports_to(:dev1) = :lead;
activate budget_watch();
activate chain_audit(:cfo);
`)

	fmt.Println("payroll is 500 = budget; raising dev1's salary by 50:")
	db.MustExec(`set salary(:dev1) = 200;`) // payroll 550 > 500

	fmt.Println("raising the budget does NOT re-test (ECA: only salary is an event):")
	db.MustExec(`set budget(:rnd) = 100;`) // condition still true, but no event

	fmt.Println("next salary event re-tests — but strict semantics: already true, no refire:")
	db.MustExec(`set salary(:dev2) = 160;`)

	fmt.Println("\ndev2 joins the team under lead (recursive chain: dev2 → lead → cfo):")
	db.MustExec(`set reports_to(:dev2) = :lead;`)

	fmt.Println("\npayroll per department (aggregate view):")
	r, _ := db.Query(`select d, payroll(d) for each department d;`)
	for _, t := range r.Tuples {
		fmt.Printf("  %s: %s\n", t[0], t[1])
	}

	s := db.Stats()
	fmt.Printf("\nstats: %d propagations, %d differential/re-evaluation executions\n",
		s.Propagations, s.DifferentialsExecuted)
}
