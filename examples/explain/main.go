// Explainability: discriminating WHY a rule triggered.
//
// The paper (§1, §8) highlights that partial differencing makes it
// trivial to determine which influent caused a rule to trigger, and
// whether it was an insertion or a deletion — information that
// ECA-systems recover only by duplicating the rule once per event type.
// Here ONE rule watches employee/department consistency and the action
// reports a different diagnosis depending on the recorded explanation.
//
// Run: go run ./examples/explain
package main

import (
	"fmt"
	"log"
	"strings"

	"partdiff"
)

func main() {
	db := partdiff.Open()

	// The action consults the explanation of the current check phase to
	// diagnose the cause — one rule, many causes.
	db.RegisterProcedure("report", func(args []partdiff.Value) error {
		causes := map[string]bool{}
		for _, e := range db.Explanations() {
			if e.Rule != "orphaned" {
				continue
			}
			for _, te := range e.Entries {
				kind := "insertion into"
				if te.TriggerSign.String() == "Δ-" {
					kind = "deletion from"
				}
				causes[kind+" "+te.Influent] = true
			}
		}
		var parts []string
		for c := range causes {
			parts = append(parts, c)
		}
		fmt.Printf("  >> employee %s is orphaned — caused by %s\n",
			args[0], strings.Join(parts, " / "))
		return nil
	})

	if _, err := db.Exec(`
create type employee;
create type department;
create function works_in(employee) -> department;
create function active(department) -> boolean;

-- An employee is orphaned when assigned to a department that is not
-- active. Both an assignment (insertion into works_in) and a
-- department shutdown (deletion semantics through negation) trigger
-- the same rule.
create rule orphaned() as
    when for each employee e, department d
    where works_in(e) = d and not active(d)
    do report(e);
`); err != nil {
		log.Fatal(err)
	}

	db.MustExec(`
create department instances :rnd, :sales;
create employee instances :ada, :grace;
set active(:rnd) = true;
set active(:sales) = true;
set works_in(:ada) = :rnd;
set works_in(:grace) = :sales;
activate orphaned();
`)

	fmt.Println("assigning ada to an inactive shell department:")
	db.MustExec(`
create department instances :shell;
set works_in(:ada) = :shell;
`)

	fmt.Println("shutting down sales (grace becomes orphaned via a DELETION):")
	db.MustExec(`remove active(:sales) = true;`)

	fmt.Println("\nraw differential trace of the last check phase:")
	for _, e := range db.Explanations() {
		for _, te := range e.Entries {
			fmt.Printf("  %s -> %d tuple(s), effect %s\n",
				te.Differential, te.Produced, te.EffectSign)
		}
	}
}
