// Network monitoring: link utilization with a SHARED derived view.
//
// The utilization view (traffic * 100 / capacity) is declared `shared`,
// so it becomes an intermediate node in the propagation network (§7.1
// node sharing) reused by two rules: a congestion alarm and an
// underutilization report. A traffic change propagates through the
// shared node once; both rule conditions above it consume the same
// wave-front Δ-set.
//
// Run: go run ./examples/netmon
package main

import (
	"fmt"
	"log"
	"strings"

	"partdiff"
)

func main() {
	db := partdiff.Open()

	db.RegisterProcedure("alarm", func(args []partdiff.Value) error {
		fmt.Printf("  >> ALARM: link %s at %s%% utilization\n", args[0], args[1])
		return nil
	})
	db.RegisterProcedure("report_idle", func(args []partdiff.Value) error {
		fmt.Printf("  >> idle: link %s at %s%%\n", args[0], args[1])
		return nil
	})

	if _, err := db.Exec(`
create type link;
create function capacity(link) -> integer;
create function traffic(link) -> integer;

create shared function utilization(link l) -> integer
    as select traffic(l) * 100 / capacity(l)
    for each link m where m = l;

create rule congested() as
    when for each link l where utilization(l) > 90
    do alarm(l, utilization(l))
    priority 5;

create rule idle() as
    when for each link l where utilization(l) < 5 and traffic(l) >= 0
    do report_idle(l, utilization(l));
`); err != nil {
		log.Fatal(err)
	}

	db.MustExec(`
create link instances :uplink, :backbone, :branch;
set capacity(:uplink) = 1000;
set capacity(:backbone) = 10000;
set capacity(:branch) = 100;
set traffic(:uplink) = 500;
set traffic(:backbone) = 5000;
set traffic(:branch) = 50;
activate congested();
activate idle();
`)

	// Show the propagation network: utilization is a shared level-1
	// node below both rule conditions.
	fmt.Println("propagation network:")
	for lvl, preds := range db.Session().Rules().Network().Levels() {
		fmt.Printf("  level %d: %s\n", lvl, strings.Join(preds, ", "))
	}

	fmt.Println("\ntraffic spike on the uplink (950/1000 = 95%):")
	db.MustExec(`set traffic(:uplink) = 950;`)

	fmt.Println("backbone drains (300/10000 = 3%):")
	db.MustExec(`set traffic(:backbone) = 300;`)

	fmt.Println("capacity upgrade on the uplink: 1000 -> 2000 (95% -> 47%),")
	fmt.Println("and simultaneously the branch saturates — one transaction:")
	db.MustExec(`
begin;
set capacity(:uplink) = 2000;
set traffic(:branch) = 99;
commit;
`)

	s := db.Stats()
	fmt.Printf("\nstats: %d propagations, %d partial differentials executed\n",
		s.Propagations, s.DifferentialsExecuted)
}
