// Fraud monitoring: active rules over a toy banking schema.
//
// This example exercises the language features beyond the paper's
// running example: disjunctive conditions (compiled to multiple
// conjunctive differentials), safe negation (whitelisting — note the
// sign crossing: REMOVING an account from the whitelist can trigger the
// rule), rule priorities with conflict resolution, and a cascading rule
// whose action feeds another rule's condition.
//
// Run: go run ./examples/fraud
package main

import (
	"fmt"
	"log"

	"partdiff"
)

func main() {
	db := partdiff.Open()

	db.RegisterProcedure("flag_account", func(args []partdiff.Value) error {
		fmt.Printf("  >> FLAG   account %s (balance %s)\n", args[0], args[1])
		return nil
	})
	db.RegisterProcedure("freeze", func(args []partdiff.Value) error {
		fmt.Printf("  >> FREEZE account %s\n", args[0])
		return nil
	})

	if _, err := db.Exec(`
create type account;
create function balance(account) -> integer;
create function withdrawn_today(account) -> integer;
create function whitelisted(account) -> boolean;
create function suspicious(account) -> boolean;

-- A withdrawal pattern is suspicious when it is large in absolute
-- terms OR drains most of the balance — unless the account is
-- whitelisted. Deleting a whitelist entry can therefore trigger the
-- rule (negative change, sign-crossed differential).
create rule watch_withdrawals() as
    when for each account a
    where (withdrawn_today(a) > 10000
           or withdrawn_today(a) * 2 > balance(a))
          and not whitelisted(a)
    do mark(a);

-- Flagged accounts with very large exposure are frozen; this rule has
-- higher priority and is fed by the first rule's action.
create rule freeze_large() as
    when for each account a
    where suspicious(a) = true and balance(a) > 50000
    do freeze(a)
    priority 10;
`); err != nil {
		log.Fatal(err)
	}

	// mark both records the flag and feeds the suspicious function —
	// a rule cascade within the same check phase.
	db.RegisterProcedure("mark", func(args []partdiff.Value) error {
		a := args[0]
		bal, _ := db.Query(fmt.Sprintf(`select balance(x) for each account x where x = %s;`, queryRef(db, a)))
		fmt.Printf("  >> FLAG   account %s (balance %s)\n", a, bal.Tuples[0][0])
		db.SetVar("marked", a)
		_, err := db.Exec(`set suspicious(:marked) = true;`)
		return err
	})

	db.MustExec(`
create account instances :alice, :bob, :corp;
set balance(:alice) = 4000;
set balance(:bob) = 20000;
set balance(:corp) = 90000;
set withdrawn_today(:alice) = 0;
set withdrawn_today(:bob) = 0;
set withdrawn_today(:corp) = 0;
set whitelisted(:corp) = true;
activate watch_withdrawals();
activate freeze_large();
`)

	fmt.Println("bob withdraws 12000 (> 10000 hard limit):")
	db.MustExec(`set withdrawn_today(:bob) = 12000;`)

	fmt.Println("alice withdraws 2500 (> half her 4000 balance):")
	db.MustExec(`set withdrawn_today(:alice) = 2500;`)

	fmt.Println("corp withdraws 60000 — whitelisted, nothing happens:")
	db.MustExec(`set withdrawn_today(:corp) = 60000;`)

	fmt.Println("corp loses its whitelist entry — the standing withdrawal now trips")
	fmt.Println("the rule (negation: a DELETION triggers), and the cascade freezes it:")
	db.MustExec(`remove whitelisted(:corp) = true;`)

	fmt.Println("\nwhy did the rules fire? (explanations from the last check phase)")
	for _, e := range db.Explanations() {
		fmt.Printf("  rule %s triggered for %v via:\n", e.Rule, e.Instances)
		for _, te := range e.Entries {
			fmt.Printf("    %s (%d tuple(s))\n", te.Differential, te.Produced)
		}
	}
}

// queryRef renders an object value as an interface variable reference
// usable in a query string.
func queryRef(db *partdiff.DB, v partdiff.Value) string {
	db.SetVar("_ref", v)
	return ":_ref"
}
