package partdiff

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"partdiff/internal/faultinject"
	"partdiff/internal/wal"
)

// The concurrency soak: one DB, many goroutines — writers committing
// explicit transactions through the admission gate, readers running on
// MVCC snapshots, an Atomic session validating optimistically — under
// -race with deterministic seeds. The soak asserts:
//
//  1. no writer ever sees ErrSessionBusy (none carries a deadline, so
//     writers must QUEUE, never be rejected),
//  2. readers never observe a torn transaction (two functions updated
//     together never disagree) and Atomic bodies see one stable
//     snapshot,
//  3. DB.CheckInvariants is clean afterwards, and
//  4. the final state is byte-identical to a fresh DB serially
//     replaying the committed transaction schedule.
//
// The committed schedule is recorded while each writer still holds the
// writer gate (between its statements and its Commit), so the log
// order IS the commit order.

const soakSchema = `
create type item;
create function quantity(item) -> integer;
create function threshold(item) -> integer;
create function x(item) -> integer;
create function y(item) -> integer;
create rule low() as
    when for each item i where quantity(i) < threshold(i)
    do record(i);
create item instances :i0, :i1, :i2, :i3, :i4, :i5;
set threshold(:i0) = 10;
set threshold(:i1) = 10;
set threshold(:i2) = 10;
set threshold(:i3) = 10;
set threshold(:i4) = 10;
set threshold(:i5) = 10;
set x(:i0) = 0;
set y(:i0) = 0;
activate low();
`

// soakOpenDB opens a DB with the soak schema; fired counts rule-action
// firings (a counter, not a list: firing order across concurrent
// committers is real nondeterminism, state equivalence is not).
func soakOpenDB(t *testing.T, fired *atomic.Int64) *DB {
	t.Helper()
	db := Open()
	if err := db.RegisterProcedure("record", func(args []Value) error {
		fired.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	db.MustExec(soakSchema)
	return db
}

// genTxn draws one writer transaction: 1–3 statements, mostly
// quantity/threshold updates, with an occasional paired x/y update that
// readers check for tearing. All statements target pre-created
// instances so OID allocation stays deterministic for the replay.
func genTxn(rng *rand.Rand, tag int) []string {
	n := 1 + rng.Intn(3)
	stmts := make([]string, 0, n+1)
	for j := 0; j < n; j++ {
		it := fmt.Sprintf(":i%d", rng.Intn(6))
		switch rng.Intn(4) {
		case 0:
			stmts = append(stmts, fmt.Sprintf("set threshold(%s) = %d;", it, rng.Intn(15)))
		case 1:
			// x and y move together; a reader seeing them disagree on
			// any item has observed a torn transaction.
			v := tag*1000 + j
			stmts = append(stmts,
				fmt.Sprintf("set x(%s) = %d;", it, v),
				fmt.Sprintf("set y(%s) = %d;", it, v))
		default:
			stmts = append(stmts, fmt.Sprintf("set quantity(%s) = %d;", it, rng.Intn(20)))
		}
	}
	return stmts
}

func TestConcurrentSoak(t *testing.T) {
	const (
		writers  = 8
		readers  = 3
		txnsEach = 25
	)
	seeds := []int64{1, 2}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			var fired atomic.Int64
			db := soakOpenDB(t, &fired)

			var (
				logMu     sync.Mutex
				committed []string // one entry per committed transaction, in commit order
			)
			done := make(chan struct{})
			var wg, writerWG sync.WaitGroup

			// Readers count completed queries; writers keep committing past
			// their quota (bounded) until every reader got at least one
			// query in, so the soak genuinely interleaves even on a box
			// where txnsEach transactions drain faster than one query.
			var reads atomic.Int64

			// Writers: explicit transactions through the gate. No call
			// carries a deadline, so ErrSessionBusy is always a failure.
			for w := 0; w < writers; w++ {
				w := w
				writerWG.Add(1)
				go func() {
					defer writerWG.Done()
					rng := rand.New(rand.NewSource(seed*100 + int64(w)))
					for i := 0; i < txnsEach || (reads.Load() < int64(readers) && i < txnsEach*40); i++ {
						stmts := genTxn(rng, w*100000+i)
						if err := db.Begin(); err != nil {
							t.Errorf("writer %d begin: %v (ErrSessionBusy=%v)", w, err, errors.Is(err, ErrSessionBusy))
							return
						}
						ok := true
						for _, stmt := range stmts {
							if _, err := db.Exec(stmt); err != nil {
								t.Errorf("writer %d: %q: %v", w, stmt, err)
								ok = false
								break
							}
						}
						if !ok {
							_ = db.Rollback()
							return
						}
						// Still holding the writer gate (explicit lease):
						// append before Commit so log order == commit order.
						logMu.Lock()
						committed = append(committed, strings.Join(stmts, " "))
						logMu.Unlock()
						if err := db.Commit(); err != nil {
							t.Errorf("writer %d commit: %v (ErrSessionBusy=%v)", w, err, errors.Is(err, ErrSessionBusy))
							return
						}
					}
				}()
			}

			// Readers: snapshot queries, never waiting on the gate. The
			// x/y join must agree on every row, always.
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-done:
							return
						default:
						}
						res, err := db.Query(`select a, b for each item i, integer a, integer b where x(i) = a and y(i) = b;`)
						if err != nil {
							t.Errorf("reader: %v", err)
							return
						}
						for _, tp := range res.Tuples {
							if !tp[0].Equal(tp[1]) {
								t.Errorf("torn read: x=%v y=%v", tp[0], tp[1])
								return
							}
						}
						reads.Add(1)
					}
				}()
			}

			// One Atomic session: a read-only body whose two reads must
			// return the same multiset even as commits land between them.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-done:
						return
					default:
					}
					err := db.Atomic(context.Background(), func(tx *Tx) error {
						const q = `select a, b for each item i, integer a, integer b where x(i) = a and y(i) = b;`
						r1, err := tx.Query(q)
						if err != nil {
							return err
						}
						r2, err := tx.Query(q)
						if err != nil {
							return err
						}
						if !reflect.DeepEqual(sortedRows(r1), sortedRows(r2)) {
							t.Errorf("Atomic snapshot moved between reads:\n %v\n %v", r1.Tuples, r2.Tuples)
						}
						return nil
					})
					if err != nil {
						t.Errorf("read-only Atomic: %v", err)
						return
					}
				}
			}()

			// Writers are bounded (txnsEach transactions each); readers
			// loop until the writer pool drains.
			writerWG.Wait()
			close(done)
			wg.Wait()

			if reads.Load() == 0 {
				t.Error("readers never completed a query during the soak")
			}
			if err := db.CheckInvariants(); err != nil {
				t.Errorf("invariants after soak: %v", err)
			}
			logMu.Lock()
			schedule := append([]string(nil), committed...)
			logMu.Unlock()
			if len(schedule) < writers*txnsEach {
				t.Fatalf("committed %d transactions, want at least %d", len(schedule), writers*txnsEach)
			}

			// Serial replay of the committed schedule on a fresh DB must
			// reproduce the exact same state, byte for byte.
			var replayFired atomic.Int64
			replay := soakOpenDB(t, &replayFired)
			for _, txn := range schedule {
				replay.MustExec("begin; " + txn + " commit;")
			}
			live := wal.MarshalState(db.Session().CaptureState())
			want := wal.MarshalState(replay.Session().CaptureState())
			if !bytes.Equal(live, want) {
				t.Errorf("final state diverges from serial replay of the committed schedule (%d vs %d bytes)",
					len(live), len(want))
			}
		})
	}
}

// sortedRows renders a result's tuples as a sorted multiset of strings
// (row iteration order within one snapshot is not specified).
func sortedRows(r *Result) []string {
	out := make([]string, len(r.Tuples))
	for i, tp := range r.Tuples {
		out[i] = fmt.Sprint(tp)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 0; i < len(s); i++ {
		for j := i + 1; j < len(s); j++ {
			if s[j] < s[i] {
				s[i], s[j] = s[j], s[i]
			}
		}
	}
}

// TestAtomicRetriesConflict exercises the facade's automatic retry: the
// first attempt's read set is invalidated by a concurrent commit, the
// re-run against a fresh snapshot succeeds.
func TestAtomicRetriesConflict(t *testing.T) {
	var fired atomic.Int64
	db := soakOpenDB(t, &fired)
	db.MustExec(`set quantity(:i0) = 50;`)
	attempts := 0
	err := db.Atomic(context.Background(), func(tx *Tx) error {
		attempts++
		if _, err := tx.Query(`select quantity(i) for each item i;`); err != nil {
			return err
		}
		if err := tx.Exec(`set threshold(:i0) = 7;`); err != nil {
			return err
		}
		if attempts == 1 {
			// Invalidate the read set — once. The retry must go through.
			if _, err := db.Exec(`set quantity(:i0) = 60;`); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Atomic with one transient conflict: %v", err)
	}
	if attempts != 2 {
		t.Errorf("body ran %d times, want 2 (one conflict, one retry)", attempts)
	}
	r, err := db.Query(`select threshold(i) for each item i where threshold(i) = 7;`)
	if err != nil || len(r.Tuples) != 1 {
		t.Errorf("retried write not applied: %v %v", r, err)
	}
}

// TestFaultSweepUnderConcurrentReaders re-runs the PR 1 fault sweep
// with snapshot readers hammering the DB throughout each faulted run:
// the rollback guarantees must hold identically, and no reader may ever
// error or block on the recovering writer.
func TestFaultSweepUnderConcurrentReaders(t *testing.T) {
	if testing.Short() {
		t.Skip("fault sweep under load skipped in -short")
	}
	script := genScript(rand.New(rand.NewSource(1)), 8)

	var baseFired []string
	base := sweepDB(t, &baseFired)
	inj := faultinject.New()
	base.Session().SetInjector(inj)
	baseFired = nil
	if err := runScript(base, script); err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
	baseState := base.Session().Store().Snapshot()
	ops := inj.Ops()
	if ops == 0 {
		t.Fatal("clean run hit no fault points; sweep is vacuous")
	}

	for idx := 0; idx < ops; idx += 2 {
		kind := faultinject.Error
		if idx%4 == 1 {
			kind = faultinject.Panic
		}
		var fired []string
		db := sweepDB(t, &fired)
		inj := faultinject.New()
		db.Session().SetInjector(inj)
		pre := db.Session().Store().Snapshot()
		fired = nil
		inj.ArmIndex(idx, kind)

		stop := hammerReads(t, db, 3)
		err := runScript(db, script)
		if err == nil {
			stop()
			t.Errorf("op %d (%v): injected fault did not surface", idx, kind)
			continue
		}
		if errors.Is(err, ErrCorrupt) {
			stop()
			t.Errorf("op %d (%v): forward-phase fault poisoned the DB under load: %v", idx, kind, err)
			continue
		}
		// Rollback left the store at the pre-transaction state (readers
		// only observe, never mutate, so this holds under load too).
		if got := db.Session().Store().Snapshot(); !reflect.DeepEqual(got, pre) {
			t.Errorf("op %d (%v): store differs from pre-transaction snapshot under load", idx, kind)
		}
		if ierr := db.CheckInvariants(); ierr != nil {
			t.Errorf("op %d (%v): invariants after rollback under load: %v", idx, kind, ierr)
		}
		// Survivor replay still under reader load.
		fired = nil
		rerr := runScript(db, script)
		stop()
		if rerr != nil {
			t.Errorf("op %d (%v): survivor replay failed: %v", idx, kind, rerr)
			continue
		}
		if !reflect.DeepEqual(fired, baseFired) {
			t.Errorf("op %d (%v): survivor fired %v, fresh DB fired %v", idx, kind, fired, baseFired)
		}
		if got := db.Session().Store().Snapshot(); !reflect.DeepEqual(got, baseState) {
			t.Errorf("op %d (%v): survivor state diverges from baseline", idx, kind)
		}
	}
}

// hammerReads runs n snapshot readers against db until the returned
// stop function is called. A reader error is a test failure: snapshot
// reads must succeed regardless of what the writer is doing.
func hammerReads(t *testing.T, db *DB, n int) (stop func()) {
	t.Helper()
	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if _, err := db.Query(`select quantity(i) for each item i;`); err != nil {
					t.Errorf("concurrent reader: %v", err)
					return
				}
			}
		}()
	}
	return func() { close(done); wg.Wait() }
}
